"""Live resharding: join and leave move tag ranges without loss."""

import pytest

from repro.errors import SpeedError

from tests.cluster.conftest import make_cluster, make_get, make_put, raw_router


def fill(deployment, router, n, prefix=b"mig"):
    puts = [make_put(i, prefix=prefix) for i in range(n)]
    for put in puts:
        router.call(put)
    return puts


class TestJoin:
    def test_every_entry_readable_after_join(self):
        d = make_cluster(n_shards=3, replication_factor=2, seed=b"join")
        router = raw_router(d)
        puts = fill(d, router, 40)
        node, report = d.cluster.add_shard()
        assert node.shard_id == "shard-3"
        assert node.shard_id in d.cluster.ring.shards
        assert report.moved > 0
        assert report.bytes_moved > 0
        for put in puts:
            response = router.call(make_get(put))
            assert response.found
            assert response.sealed_result == put.sealed_result

    def test_join_restores_ownership_invariant(self):
        d = make_cluster(n_shards=3, replication_factor=2, seed=b"join-inv")
        router = raw_router(d)
        puts = fill(d, router, 40)
        d.cluster.add_shard()
        for put in puts:
            owners = d.cluster.owners_of(put.tag)
            assert d.cluster.holders_of(put.tag) == sorted(owners)

    def test_join_drops_entries_from_former_owners(self):
        d = make_cluster(n_shards=3, replication_factor=1, seed=b"join-drop")
        router = raw_router(d)
        n = 60
        fill(d, router, n)
        assert d.cluster.total_entries() == n
        _, report = d.cluster.add_shard()
        # RF 1: each entry lives on exactly one shard, so every moved
        # entry must have been dropped at its source.
        assert report.moved == report.dropped > 0
        assert d.cluster.total_entries() == n

    def test_new_shard_serves_existing_router(self):
        d = make_cluster(n_shards=2, replication_factor=1, seed=b"join-route")
        router = raw_router(d)
        puts = fill(d, router, 40)
        node, _ = d.cluster.add_shard()
        owned = [p for p in puts if d.cluster.ring.primary(p.tag) == node.shard_id]
        assert owned, "newcomer took no tags — raise the fill count"
        timeouts_before = router.stats.get_timeouts
        for put in owned:
            assert router.call(make_get(put)).found
        assert router.stats.get_timeouts == timeouts_before

    def test_duplicate_shard_id_rejected(self):
        d = make_cluster(n_shards=2, replication_factor=1, seed=b"join-dup")
        with pytest.raises(SpeedError):
            d.cluster.add_shard("shard-0")


class TestLeave:
    def test_graceful_leave_loses_nothing(self):
        d = make_cluster(n_shards=4, replication_factor=2, seed=b"leave")
        router = raw_router(d)
        puts = fill(d, router, 40)
        report = d.cluster.remove_shard("shard-1")
        assert "shard-1" not in d.cluster.ring.shards
        assert "shard-1" not in d.cluster.shards
        assert report.transfers >= 1
        timeouts_before = router.stats.get_timeouts
        for put in puts:
            response = router.call(make_get(put))
            assert response.found
            assert response.sealed_result == put.sealed_result
        # The router was detached, so no request ever probed the leaver.
        assert router.stats.get_timeouts == timeouts_before

    def test_leave_rehomes_to_future_owners(self):
        d = make_cluster(n_shards=4, replication_factor=1, seed=b"leave-own")
        router = raw_router(d)
        puts = fill(d, router, 60)
        d.cluster.remove_shard("shard-2")
        for put in puts:
            owners = d.cluster.owners_of(put.tag)
            holders = d.cluster.holders_of(put.tag)
            assert owners[0] in holders

    def test_last_shard_cannot_leave(self):
        d = make_cluster(n_shards=1, replication_factor=1, seed=b"leave-last")
        with pytest.raises(SpeedError):
            d.cluster.remove_shard("shard-0")

    def test_unknown_shard_rejected(self):
        d = make_cluster(n_shards=2, replication_factor=1, seed=b"leave-x")
        with pytest.raises(SpeedError):
            d.cluster.remove_shard("ghost")


class TestMigrationIdempotence:
    def test_join_then_leave_round_trip(self):
        d = make_cluster(n_shards=3, replication_factor=2, seed=b"round")
        router = raw_router(d)
        puts = fill(d, router, 30)
        node, _ = d.cluster.add_shard()
        d.cluster.remove_shard(node.shard_id)
        for put in puts:
            assert router.call(make_get(put)).found
        for put in puts:
            owners = d.cluster.owners_of(put.tag)
            assert set(owners) <= set(d.cluster.holders_of(put.tag))
