"""Eviction and quota interacting with replication.

A replica dropping its copy — capacity eviction, quota pressure, or a
ring-change discard — must never surface as data loss: the next read
fails over to a surviving holder and the router's read-repair re-PUT
restores full replication.  These tests pin the interaction between the
store's eviction/quota machinery (paper §III-D) and the cluster layer.
"""

from repro.store.quota import QuotaPolicy
from repro.store.resultstore import StoreConfig

from .conftest import make_cluster, make_get, make_put, raw_router


def settle_repairs(router):
    """Absorb the one-way repair acks (they are router-internal)."""
    assert router.drain_responses() == []


class TestEvictedReplicaRecovers:
    def test_evicted_primary_is_read_repaired(self):
        deployment = make_cluster(n_shards=4, replication_factor=2)
        router = raw_router(deployment)
        put = make_put(0, prefix=b"evict")
        router.call(put)
        holders = deployment.cluster.holders_of(put.tag)
        assert len(holders) == 2

        # The primary evicts its copy (discard_tags runs the same
        # release path as capacity eviction).
        primary = deployment.cluster.owners_of(put.tag)[0]
        node = deployment.cluster.shards[primary]
        assert node.store.discard_tags([put.tag]) == 1
        assert primary not in deployment.cluster.holders_of(put.tag)

        # The read is served from the surviving replica, not reported
        # lost, and the eviction is repaired in the background.
        response = router.call(make_get(put))
        assert response.found
        assert router.stats.read_repairs == 1
        settle_repairs(router)
        assert router.stats.repair_acks == 1
        assert primary in deployment.cluster.holders_of(put.tag)

    def test_capacity_eviction_is_never_reported_as_loss(self):
        deployment = make_cluster(
            n_shards=3,
            replication_factor=2,
            store_config=StoreConfig(capacity_entries=6),
        )
        router = raw_router(deployment)
        puts = [make_put(i, prefix=b"cap") for i in range(18)]
        for put in puts:
            router.call(put)
        evictions = sum(
            node.store.stats.evictions
            for node in deployment.cluster.shards.values()
        )
        assert evictions > 0, "workload must overflow the per-shard capacity"

        # Any tag with at least one surviving holder must be served; a
        # miss is only legitimate once every replica evicted the entry.
        for put in puts:
            holders = deployment.cluster.holders_of(put.tag)
            response = router.call(make_get(put))
            if holders:
                assert response.found, "surviving copy must be served"
            else:
                assert not response.found
        settle_repairs(router)
        assert router.stats.repair_acks == router.stats.read_repairs

    def test_lru_victim_is_read_repaired_from_replica(self):
        # Capacity-driven (not simulated) eviction: fill the primary
        # past its capacity through the sync ingest path until LRU
        # evicts the entry, then read it back through the router.
        deployment = make_cluster(
            n_shards=2,
            replication_factor=2,
            store_config=StoreConfig(capacity_entries=3),
        )
        router = raw_router(deployment)
        put = make_put(0, prefix=b"lru")
        router.call(put)
        primary = deployment.cluster.owners_of(put.tag)[0]
        node = deployment.cluster.shards[primary]

        fillers = 0
        while node.store.contains(put.tag):
            filler = make_put(100 + fillers, prefix=b"filler")
            node.store.ingest_entry(
                filler.tag, filler.challenge, filler.wrapped_key,
                filler.sealed_result,
            )
            fillers += 1
            assert fillers < 10, "capacity never evicted the LRU entry"
        assert node.store.stats.evictions >= 1

        response = router.call(make_get(put))
        assert response.found
        assert router.stats.read_repairs == 1
        settle_repairs(router)
        assert router.stats.repair_acks == 1
        assert primary in deployment.cluster.holders_of(put.tag)


class TestQuotaInteraction:
    def test_eviction_releases_quota_so_repair_is_admitted(self):
        # One entry fills the app's whole quota on each shard.  Evicting
        # the primary's copy must release that quota, so the read-repair
        # re-PUT is admitted instead of bouncing off the quota it would
        # still be holding.
        deployment = make_cluster(
            n_shards=2,
            replication_factor=2,
            store_config=StoreConfig(quota=QuotaPolicy(max_entries_per_app=1)),
        )
        router = raw_router(deployment)
        put = make_put(0, prefix=b"quota")
        router.call(put)
        primary = deployment.cluster.owners_of(put.tag)[0]
        deployment.cluster.shards[primary].store.discard_tags([put.tag])

        response = router.call(make_get(put))
        assert response.found
        settle_repairs(router)
        assert router.stats.repair_acks == 1
        assert router.stats.repair_rejects == 0
        assert primary in deployment.cluster.holders_of(put.tag)

    def test_quota_held_elsewhere_rejects_repair_without_losing_data(self):
        # Counter-case: the app is over quota on the repaired shard
        # (quota slot taken by a different entry), so the repair re-PUT
        # is rejected — but the read itself still succeeds and the
        # surviving replica keeps serving.
        deployment = make_cluster(
            n_shards=2,
            replication_factor=2,
            store_config=StoreConfig(quota=QuotaPolicy(max_entries_per_app=1)),
        )
        router = raw_router(deployment)
        first = make_put(0, prefix=b"qfull")
        router.call(first)
        primary = deployment.cluster.owners_of(first.tag)[0]
        node = deployment.cluster.shards[primary]
        # Drop the first entry's copy WITHOUT releasing quota by seeding
        # a second same-app entry directly, keeping the shard at quota.
        node.store.discard_tags([first.tag])
        with node.store.enclave.ecall("test_fill"):
            assert node.store._dispatch(make_put(1, prefix=b"qfill")).accepted

        response = router.call(make_get(first))
        assert response.found  # still served from the surviving holder
        settle_repairs(router)
        assert router.stats.repair_rejects == 1
        assert primary not in deployment.cluster.holders_of(first.tag)
        # And the entry keeps being readable on later calls.
        assert router.call(make_get(first)).found
