"""Streaming resharding: the dual-ownership window, crash-safe hand-off
marks, and migration's interplay with replication, quotas, and faults."""

import contextlib
import dataclasses

import pytest

from repro.cluster.migration import MigrationConfig
from repro.cluster.ring import ShardRing, tag_point
from repro.errors import (
    MigrationIngestError,
    MigrationInProgressError,
    MigrationStateError,
)
from repro.store.resultstore import StoreConfig

from tests.cluster.conftest import make_cluster, make_get, make_put, raw_router


def fill(router, n, prefix=b"stream"):
    puts = [make_put(i, prefix=prefix) for i in range(n)]
    for put in puts:
        assert router.call(put).accepted
    return puts


def ownership_exact(cluster, puts):
    return all(
        cluster.holders_of(p.tag) == sorted(cluster.owners_of(p.tag))
        for p in puts
    )


class TestRingTransition:
    def ring(self, n=3, vnodes=16):
        ring = ShardRing(vnodes=vnodes)
        for i in range(n):
            ring.add_shard(f"shard-{i}")
        return ring

    def test_begin_join_opens_window_with_ranges(self):
        ring = self.ring()
        ranges = ring.begin_join("shard-3", 2)
        assert ring.in_transition
        assert ranges
        assert all("shard-3" in r.dests for r in ranges)

    def test_write_owners_point_at_pending_ring(self):
        ring = self.ring()
        ring.begin_join("shard-3", 2)
        settled = self.ring(4)
        tag = bytes(range(32))
        assert ring.write_owners(tag, 2) == settled.owners(tag, 2)

    def test_read_owners_keep_old_owners_until_commit(self):
        ring = self.ring()
        ranges = ring.begin_join("shard-3", 2)
        moved = next(
            r for r in ranges if "shard-3" in r.dests and r.sources
        )
        # Any tag whose point falls in an uncommitted moved range still
        # reads from its old owners (plus the pending ones as failover).
        tag = bytes(range(32))
        for r in ranges:
            if r.contains(tag_point(tag)):
                readers = ring.read_owners(tag, 2)
                for source in r.sources:
                    assert source in readers
                break
        assert moved.index not in ()

    def test_commit_range_switches_reads_to_new_owners(self):
        ring = self.ring()
        ranges = ring.begin_join("shard-3", 2)
        for r in ranges:
            ring.commit_range(r.index)
        ring.finish()
        assert not ring.in_transition
        assert "shard-3" in ring.shards

    def test_abort_transition_restores_old_ring(self):
        ring = self.ring()
        before = ring.shards
        ring.begin_join("shard-3", 2)
        ring.abort_transition()
        assert not ring.in_transition
        assert ring.shards == before

    def test_second_transition_rejected_while_open(self):
        ring = self.ring()
        ring.begin_join("shard-3", 2)
        with pytest.raises(MigrationInProgressError):
            ring.begin_join("shard-4", 2)

    def test_commit_unknown_range_rejected(self):
        ring = self.ring()
        ring.begin_join("shard-3", 2)
        with pytest.raises(MigrationStateError):
            ring.commit_range(10_000)


class TestStreamingJoin:
    def test_stepwise_join_matches_blocking_result(self):
        d = make_cluster(n_shards=3, replication_factor=2, seed=b"step-join")
        router = raw_router(d)
        puts = fill(router, 30)
        migrator = d.cluster.begin_add_shard()
        steps = 0
        while migrator.pending_ranges():
            assert migrator.step()
            steps += 1
        report = migrator.finish()
        assert steps == len(migrator.ranges)
        assert report.moved > 0
        assert ownership_exact(d.cluster, puts)
        for put in puts:
            response = router.call(make_get(put))
            assert response.found
            assert response.sealed_result == put.sealed_result

    def test_reads_and_writes_served_inside_the_window(self):
        d = make_cluster(n_shards=3, replication_factor=2, seed=b"window")
        router = raw_router(d)
        puts = fill(router, 20)
        migrator = d.cluster.begin_add_shard()
        # Half-way through the hand-off: every pre-existing entry is
        # still readable (failover covers uncommitted ranges) and new
        # writes land on the pending owners without being lost.
        for _ in range(len(migrator.pending_ranges()) // 2):
            migrator.step()
        for put in puts:
            assert router.call(make_get(put)).found
        fresh = [make_put(i, prefix=b"window-fresh") for i in range(8)]
        for put in fresh:
            assert router.call(put).accepted
            assert router.call(make_get(put)).found
        migrator.run()
        assert ownership_exact(d.cluster, puts + fresh)

    def test_read_repair_does_not_resurrect_across_the_window(self):
        # A GET that fails over to an old owner during the window must
        # not copy the entry somewhere the settled ring disowns.
        d = make_cluster(n_shards=3, replication_factor=2, seed=b"rr-window")
        router = raw_router(d)
        puts = fill(router, 24)
        migrator = d.cluster.begin_add_shard()
        for _ in range(len(migrator.pending_ranges()) // 2):
            migrator.step()
        for put in puts:
            assert router.call(make_get(put)).found
        migrator.run()
        assert ownership_exact(d.cluster, puts)


class TestMigrationUnderFaults:
    def test_join_survives_one_dead_replica(self):
        # RF=2: every range has two source replicas, so one dead source
        # must not block the stream — the surviving replica feeds it.
        d = make_cluster(n_shards=3, replication_factor=2, seed=b"dead-rep")
        router = raw_router(d)
        puts = fill(router, 24)
        victim = d.cluster.shard_ids[0]
        d.cluster.kill_shard(victim)
        migrator = d.cluster.begin_add_shard()
        while migrator.pending_ranges():
            if not migrator.step():
                break
        assert not migrator.pending_ranges()
        migrator.finish()
        d.cluster.revive_shard(victim)
        for put in puts:
            assert router.call(make_get(put)).found

    def test_dead_joiner_blocks_instead_of_losing_entries(self):
        d = make_cluster(n_shards=3, replication_factor=2, seed=b"dead-join")
        router = raw_router(d)
        puts = fill(router, 16)
        migrator = d.cluster.begin_add_shard()
        d.cluster.kill_shard(migrator.shard_id)
        assert not migrator.step()          # blocked, not lost
        assert migrator.pending_ranges()
        d.cluster.revive_shard(migrator.shard_id)
        migrator.run()
        assert ownership_exact(d.cluster, puts)

    def test_power_fail_on_source_mid_stream_recovers_consistently(self):
        d = make_cluster(
            n_shards=3, replication_factor=2, seed=b"pf-src",
            store_config=StoreConfig(durable=True),
        )
        router = raw_router(d)
        puts = fill(router, 24)
        migrator = d.cluster.begin_add_shard()
        for _ in range(len(migrator.pending_ranges()) // 2):
            migrator.step()
        for sid in migrator.ranges[0].sources:
            d.cluster.power_fail_shard(sid)
        migrator.run()
        assert ownership_exact(d.cluster, puts)
        for put in puts:
            assert router.call(make_get(put)).found

    def test_power_fail_on_joiner_mid_stream_recovers_consistently(self):
        d = make_cluster(
            n_shards=3, replication_factor=2, seed=b"pf-dst",
            store_config=StoreConfig(durable=True),
        )
        router = raw_router(d)
        puts = fill(router, 24)
        migrator = d.cluster.begin_add_shard()
        for _ in range(len(migrator.pending_ranges()) // 2):
            migrator.step()
        d.cluster.power_fail_shard(migrator.shard_id)
        migrator.run()
        assert ownership_exact(d.cluster, puts)
        for put in puts:
            assert router.call(make_get(put)).found


class TestQuotaFullTarget:
    def test_full_target_rejects_batch_and_abort_restores_ownership(self):
        d = make_cluster(n_shards=3, replication_factor=2, seed=b"quota-target")
        router = raw_router(d)
        puts = fill(router, 12)
        owners_before = {p.tag: d.cluster.owners_of(p.tag) for p in puts}
        shards_before = set(d.cluster.shards)
        migrator = d.cluster.begin_add_shard(
            config=MigrationConfig(batch_entries=4)
        )
        # The target's quota fills before the first migrated batch: the
        # destination refuses the ingest instead of silently evicting
        # foreground entries to make room.
        target = d.cluster.shards[migrator.shard_id].store
        target.config = dataclasses.replace(target.config, capacity_bytes=8)
        with pytest.raises(MigrationIngestError) as excinfo:
            migrator.run()
        assert excinfo.value.code == "migration_ingest"
        d.cluster.abort_add_shard(migrator)
        assert set(d.cluster.shards) == shards_before
        assert not d.cluster.ring.in_transition
        assert owners_before == {
            p.tag: d.cluster.owners_of(p.tag) for p in puts
        }
        assert ownership_exact(d.cluster, puts)
        for put in puts:
            assert router.call(make_get(put)).found


class TestStreamingLeave:
    def test_stepwise_leave_loses_nothing(self):
        d = make_cluster(n_shards=4, replication_factor=2, seed=b"step-leave")
        router = raw_router(d)
        puts = fill(router, 30)
        leaver = d.cluster.shard_ids[1]
        migrator = d.cluster.begin_remove_shard(leaver)
        while migrator.pending_ranges():
            assert migrator.step()
        migrator.finish()
        assert leaver not in d.cluster.shards
        assert leaver not in d.cluster.ring.shards
        assert ownership_exact(d.cluster, puts)
        for put in puts:
            assert router.call(make_get(put)).found


class FakeEngine:
    """Minimal engine stand-in: a background budget plus the
    ``background()`` charging context the step path enters."""

    def __init__(self, budget):
        self._budget = budget

    def background_budget(self, parallelism=1):
        return self._budget

    @contextlib.contextmanager
    def background(self):
        yield


class TestOverlapPacing:
    """``overlap_steps`` demand pacing: spread pending ranges evenly
    across the remaining foreground gaps, never exceed the engine's
    background budget, and defer the excess instead of front-loading it
    onto the critical path."""

    def migrator_with_pending(self, seed, vnodes=16):
        d = make_cluster(n_shards=3, replication_factor=2, seed=seed,
                         vnodes=vnodes)
        router = raw_router(d)
        fill(router, 24)
        return d.cluster.begin_add_shard()

    def test_paces_demand_across_remaining_rounds(self):
        migrator = self.migrator_with_pending(b"pace-even")
        pending = len(migrator.pending_ranges())
        rounds_left = pending  # one range per gap suffices
        committed = migrator.overlap_steps(rounds_left)
        assert committed == 1  # ceil(pending / rounds_left)

    def test_last_gap_takes_the_remainder_without_engine(self):
        migrator = self.migrator_with_pending(b"pace-tail")
        pending = len(migrator.pending_ranges())
        assert pending > 1
        # No engine attached: the budget is pure demand pacing, so the
        # final gap drains everything that is left.
        committed = migrator.overlap_steps(1)
        assert committed == pending
        assert not migrator.pending_ranges()

    def test_background_budget_caps_the_intrusion(self):
        migrator = self.migrator_with_pending(b"pace-cap")
        migrator.engine = FakeEngine(budget=2)
        pending = len(migrator.pending_ranges())
        assert pending > 2
        # Demand says "drain all now"; the engine budget says two slots.
        committed = migrator.overlap_steps(1)
        assert committed == 2
        assert len(migrator.pending_ranges()) == pending - 2

    def test_yielded_slots_widen_the_cap(self):
        migrator = self.migrator_with_pending(b"pace-widen")
        pending = len(migrator.pending_ranges())
        migrator.engine = FakeEngine(budget=pending)
        committed = migrator.overlap_steps(1)
        assert committed == pending

    def test_returns_zero_when_nothing_pending(self):
        migrator = self.migrator_with_pending(b"pace-done")
        while migrator.pending_ranges():
            migrator.step()
        assert migrator.overlap_steps(4) == 0

    def test_stops_when_every_range_is_blocked(self):
        migrator = self.migrator_with_pending(b"pace-blocked")
        migrator.cluster.kill_shard(migrator.shard_id)
        assert migrator.overlap_steps(1) == 0
        assert migrator.pending_ranges()
