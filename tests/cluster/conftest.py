"""Shared helpers for the cluster test suite."""

from __future__ import annotations

import pytest

from repro import ClusterDeployment
from repro.crypto.hashes import sha256
from repro.net.messages import GetRequest, PutRequest


def make_cluster(n_shards=4, replication_factor=2, seed=b"test-cluster", **kwargs):
    return ClusterDeployment(
        seed=seed, n_shards=n_shards, replication_factor=replication_factor,
        **kwargs,
    )


def raw_router(deployment, name="raw-client"):
    """A ClusterRouter for a bench-style client enclave (no runtime)."""
    enclave = deployment.platform.create_enclave(name, name.encode() + b"-code")
    return deployment.cluster.connect(name, enclave)


def make_put(i, prefix=b"item", app_id="raw-client"):
    tag = sha256(prefix + i.to_bytes(4, "big"))
    return PutRequest(
        tag=tag,
        challenge=b"r" * 32,
        wrapped_key=b"k" * 16,
        sealed_result=b"sealed-%d" % i,
        app_id=app_id,
    )


def make_get(put):
    return GetRequest(tag=put.tag, app_id=put.app_id)


def puts_spanning_all_shards(deployment, per_shard=2, prefix=b"span"):
    """Deterministic PUTs covering every shard as primary."""
    ring = deployment.cluster.ring
    needed = {s: per_shard for s in ring.shards}
    puts = []
    i = 0
    while any(v > 0 for v in needed.values()):
        put = make_put(i, prefix=prefix)
        primary = ring.primary(put.tag)
        if needed[primary] > 0:
            needed[primary] -= 1
            puts.append(put)
        i += 1
        assert i < 10_000, "ring failed to cover all shards"
    return puts


@pytest.fixture
def cluster4():
    return make_cluster(n_shards=4, replication_factor=2)
