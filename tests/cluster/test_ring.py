"""Consistent-hash ring: ownership, balance, and minimal disruption."""

import pytest

from repro.cluster.ring import RING_SIZE, ShardRing, tag_point
from repro.crypto.hashes import sha256
from repro.errors import SpeedError


def tags(n, prefix=b"ring"):
    return [sha256(prefix + i.to_bytes(4, "big")) for i in range(n)]


def ring_with(*shard_ids, vnodes=64):
    ring = ShardRing(vnodes=vnodes)
    for shard_id in shard_ids:
        ring.add_shard(shard_id)
    return ring


class TestTagPoint:
    def test_leading_eight_bytes(self):
        tag = bytes(range(32))
        assert tag_point(tag) == int.from_bytes(tag[:8], "big")
        assert tag_point(tag) < RING_SIZE

    def test_short_tag_rejected(self):
        with pytest.raises(SpeedError):
            tag_point(b"short")


class TestMembership:
    def test_add_remove(self):
        ring = ring_with("a", "b")
        assert ring.shards == ("a", "b")
        assert "a" in ring and len(ring) == 2
        ring.remove_shard("a")
        assert ring.shards == ("b",)

    def test_duplicate_add_rejected(self):
        ring = ring_with("a")
        with pytest.raises(SpeedError):
            ring.add_shard("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(SpeedError):
            ring_with("a").remove_shard("ghost")

    def test_empty_ring_has_no_owners(self):
        with pytest.raises(SpeedError):
            ShardRing().owners(tags(1)[0])


class TestOwnership:
    def test_deterministic_across_instances(self):
        r1 = ring_with("a", "b", "c")
        r2 = ring_with("c", "a", "b")  # insertion order must not matter
        for tag in tags(64):
            assert r1.owners(tag, 2) == r2.owners(tag, 2)

    def test_owners_distinct_and_primary_first(self):
        ring = ring_with("a", "b", "c", "d")
        for tag in tags(64):
            owners = ring.owners(tag, 3)
            assert len(owners) == len(set(owners)) == 3
            assert owners[0] == ring.primary(tag)

    def test_replication_clamped_to_shard_count(self):
        ring = ring_with("a", "b")
        for tag in tags(16):
            assert sorted(ring.owners(tag, 5)) == ["a", "b"]

    def test_single_shard_owns_everything(self):
        ring = ring_with("solo")
        for tag in tags(16):
            assert ring.owners(tag, 2) == ["solo"]
        assert ring.load_share("solo") == 1.0


class TestBalanceAndDisruption:
    def test_load_shares_sum_to_one(self):
        ring = ring_with("a", "b", "c", "d")
        total = sum(ring.load_share(s) for s in ring.shards)
        assert total == pytest.approx(1.0)

    def test_vnodes_spread_load(self):
        ring = ring_with("a", "b", "c", "d", vnodes=128)
        corpus = tags(2000)
        counts = {s: 0 for s in ring.shards}
        for tag in corpus:
            counts[ring.primary(tag)] += 1
        for count in counts.values():
            # Perfect balance is 500; vnodes keep skew well bounded.
            assert 250 <= count <= 750

    def test_removal_only_moves_the_removed_shards_tags(self):
        ring = ring_with("a", "b", "c", "d")
        corpus = tags(500)
        before = {tag: ring.primary(tag) for tag in corpus}
        ring.remove_shard("d")
        for tag in corpus:
            if before[tag] != "d":
                assert ring.primary(tag) == before[tag]
            else:
                assert ring.primary(tag) != "d"

    def test_join_steals_only_what_it_now_owns(self):
        ring = ring_with("a", "b", "c")
        corpus = tags(500)
        before = {tag: ring.primary(tag) for tag in corpus}
        ring.add_shard("d")
        moved = 0
        for tag in corpus:
            primary = ring.primary(tag)
            if primary != before[tag]:
                assert primary == "d"  # only the newcomer gains tags
                moved += 1
        assert 0 < moved < len(corpus) / 2
