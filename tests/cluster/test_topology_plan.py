"""Planned topology transitions: TopologyPlan validation, weighted vnode
placement, the one-window multi-change diff, ring boundary semantics, and
the Session.apply_topology / rebalance(weights=...) surface."""

import pytest

from repro import TopologyPlan, TopologyReport, connect
from repro.cluster.ring import RING_SIZE, MigrationRange, ShardRing, tag_point
from repro.errors import (
    MigrationInProgressError,
    MigrationStateError,
    SpeedError,
)

from tests.cluster.conftest import make_cluster, make_get, make_put, raw_router
from tests.proptest import for_all, integers, lists_of


def ring_with(*shard_ids, vnodes=16):
    ring = ShardRing(vnodes=vnodes)
    for shard_id in shard_ids:
        ring.add_shard(shard_id)
    return ring


def point_tag(point: int) -> bytes:
    """A 32-byte tag whose ring position is exactly ``point``."""
    return point.to_bytes(8, "big") + bytes(24)


class TestTopologyPlanValidation:
    def test_empty_plan_rejected(self):
        with pytest.raises(SpeedError, match="empty"):
            TopologyPlan().validate()

    def test_builders_compose_immutably(self):
        base = TopologyPlan().join("s4", weight=2.0)
        extended = base.leave("s0").reweight("s1", 0.5)
        assert base.leaves == ()
        assert extended.joins == (("s4", 2.0),)
        assert extended.leaves == ("s0",)
        assert extended.reweights == (("s1", 0.5),)
        extended.validate()

    def test_shard_in_two_changes_rejected(self):
        plan = TopologyPlan().leave("s0").reweight("s0", 2.0)
        with pytest.raises(SpeedError, match="at most one change"):
            plan.validate()

    def test_non_positive_weight_rejected(self):
        with pytest.raises(SpeedError, match="weight"):
            TopologyPlan().join("s4", weight=0.0).validate()
        with pytest.raises(SpeedError, match="weight"):
            TopologyPlan().reweight("s1", -1.0).validate()

    def test_label_summarises_every_change(self):
        plan = (
            TopologyPlan().join("s4").join(None).leave("s0").reweight("s1", 2.0)
        )
        assert plan.label() == "+s4+?-s0~s1"
        assert TopologyPlan().label() == "noop"


class TestWeightedPlacement:
    def test_vnode_count_scales_with_weight(self):
        ring = ShardRing(vnodes=16)
        assert ring.vnode_count(1.0) == 16
        assert ring.vnode_count(2.0) == 32
        assert ring.vnode_count(0.5) == 8
        assert ring.vnode_count(0.001) == 1  # floored: every member owns

    def test_add_shard_places_weighted_points(self):
        ring = ShardRing(vnodes=16)
        ring.add_shard("light", weight=0.5)
        ring.add_shard("heavy", weight=2.0)
        counts = {"light": 0, "heavy": 0}
        for owner in ring._owners:
            counts[owner] += 1
        assert counts == {"light": 8, "heavy": 32}
        assert ring.weight_of("light") == 0.5
        assert ring.weight_of("heavy") == 2.0

    def test_weight_of_unknown_shard_rejected(self):
        with pytest.raises(SpeedError):
            ring_with("a").weight_of("ghost")

    def test_heavier_shard_owns_proportionally_more(self):
        ring = ShardRing(vnodes=64)
        ring.add_shard("a", weight=1.0)
        ring.add_shard("b", weight=3.0)
        share = ring.load_share("b")
        assert 0.75 * 0.8 <= share <= 0.75 * 1.2

    def test_weights_survive_a_finished_transition(self):
        ring = ShardRing(vnodes=8)
        ring.add_shard("a", weight=2.0)
        ring.add_shard("b")
        for rng in ring.begin_join("c", 2, weight=0.5):
            ring.commit_range(rng.index)
        ring.finish()
        assert ring.weight_of("a") == 2.0
        assert ring.weight_of("c") == 0.5

    def test_abort_restores_previous_weights(self):
        ring = ShardRing(vnodes=8)
        ring.add_shard("a", weight=2.0)
        ring.add_shard("b")
        ring.begin_plan(TopologyPlan().reweight("a", 0.5), 2)
        ring.abort_transition()
        assert ring.weight_of("a") == 2.0


class TestBeginPlan:
    def members(self, vnodes=8):
        return ring_with("shard-0", "shard-1", "shard-2", "shard-3",
                         vnodes=vnodes)

    def test_multi_change_plan_opens_one_window(self):
        ring = self.members()
        plan = (
            TopologyPlan()
            .join("shard-4", weight=2.0).join("shard-5")
            .leave("shard-0").reweight("shard-1", 0.5)
        )
        ranges = ring.begin_plan(plan, 2)
        assert ring.in_transition
        assert ranges
        touched = {s for r in ranges for s in (*r.sources, *r.dests)}
        assert {"shard-4", "shard-5"} <= touched
        assert "shard-0" not in ring.pending_shards
        assert set(ring.pending_shards) == {
            "shard-1", "shard-2", "shard-3", "shard-4", "shard-5"
        }
        for rng in ranges:
            ring.commit_range(rng.index)
        ring.finish()
        assert ring.weight_of("shard-4") == 2.0
        assert ring.weight_of("shard-1") == 0.5
        assert "shard-0" not in ring

    def test_planned_diff_never_exceeds_serialized_total(self):
        # One diff to the final ring moves at most what N serialized
        # windows move: each range hands off once, never through an
        # intermediate ring that a later join re-shuffles.
        planned = self.members()
        plan = TopologyPlan()
        for i in range(4, 8):
            plan = plan.join(f"shard-{i}")
        planned_width = sum(r.width for r in planned.begin_plan(plan, 2))

        serial = self.members()
        serial_width = 0
        for i in range(4, 8):
            for rng in serial.begin_join(f"shard-{i}", 2):
                serial_width += rng.width
                serial.commit_range(rng.index)
            serial.finish()
        assert planned_width <= serial_width
        assert planned.pending_shards == serial.shards

    def test_second_plan_rejected_while_open(self):
        ring = self.members()
        ring.begin_plan(TopologyPlan().join("shard-4"), 2)
        with pytest.raises(MigrationInProgressError):
            ring.begin_plan(TopologyPlan().join("shard-5"), 2)

    def test_unnamed_join_rejected_at_ring_level(self):
        ring = self.members()
        with pytest.raises(SpeedError, match="concrete join shard ids"):
            ring.begin_plan(TopologyPlan().join(None), 2)

    def test_unknown_leaver_and_known_joiner_rejected(self):
        ring = self.members()
        with pytest.raises(SpeedError):
            ring.begin_plan(TopologyPlan().leave("ghost"), 2)
        with pytest.raises(SpeedError):
            ring.begin_plan(TopologyPlan().join("shard-0"), 2)

    def test_plan_may_not_drain_the_whole_ring(self):
        ring = ring_with("a", "b", vnodes=8)
        with pytest.raises(MigrationStateError):
            ring.begin_plan(TopologyPlan().leave("a").leave("b"), 2)

    def test_abort_restores_membership(self):
        ring = self.members()
        before = ring.shards
        ring.begin_plan(
            TopologyPlan().join("shard-4").leave("shard-0"), 2
        )
        ring.abort_transition()
        assert ring.shards == before
        assert not ring.in_transition


class TestWrapMergePin:
    """Pin the ``_begin`` wrap-around merge: a movement contiguous
    *through zero* is one range (one hand-off, one WAL commit mark), not
    a pre-zero slice plus a separate wrap slice."""

    def test_join_moving_a_range_through_zero_yields_one_range(self):
        # Deterministic scenario (sha256 placement): joining "j21" to a
        # two-shard ring at vnodes=4 moves a slice that spans point 0.
        ring = ring_with("shard-0", "shard-1", vnodes=4)
        ranges = ring.begin_join("j21", 2)
        wraps = [r for r in ranges if r.lo > r.hi]
        assert len(wraps) == 1
        [wrap] = wraps
        # The merge fired: the wrap range starts before the last merged
        # boundary, i.e. it absorbed the pre-zero slice with the same
        # movement instead of leaving it as a second range.
        boundaries = sorted(set(ring._points) | set(ring._next._points))
        assert wrap.lo < boundaries[-1]
        assert wrap.contains(boundaries[-1])
        # No other range duplicates the movement adjacent to the wrap.
        for rng in ranges:
            if rng is not wrap:
                assert not (
                    rng.hi == wrap.lo
                    and rng.sources == wrap.sources
                    and rng.dests == wrap.dests
                )

    def test_every_boundary_lands_in_at_most_one_range(self):
        ring = ring_with("shard-0", "shard-1", vnodes=4)
        ranges = ring.begin_join("j21", 2)
        boundaries = sorted(set(ring._points) | set(ring._next._points))
        for point in boundaries + [0, RING_SIZE - 1]:
            covering = [r for r in ranges if r.contains(point)]
            assert len(covering) <= 1


class TestBoundarySemantics:
    def test_tag_exactly_on_a_vnode_point_owned_by_that_vnode(self):
        # bisect_left: a tag landing exactly on a vnode point belongs to
        # that vnode's shard (the interval is (prev, point]).
        ring = ring_with("a", "b", "c", vnodes=8)
        for idx, point in enumerate(ring._points):
            assert ring.primary(point_tag(point)) == ring._owners[idx]

    def test_range_ends_agree_with_owner_lookup(self):
        # MigrationRange is (lo, hi]: the inclusive end resolves to the
        # range's dests under the pending ring and its sources under the
        # old one; the exclusive start is outside the range.
        ring = ring_with("shard-0", "shard-1", "shard-2", vnodes=8)
        ranges = ring.begin_join("shard-3", 2)
        for rng in ranges:
            assert rng.contains(rng.hi)
            assert not rng.contains(rng.lo)
            hi_tag = point_tag(rng.hi)
            assert ring.write_owners(hi_tag, 2) == list(rng.dests)
            assert ring.read_owners(hi_tag, 2)[: len(rng.sources)] == list(
                rng.sources
            )

    def test_wrap_region_owned_by_first_vnode(self):
        # A tag past the last vnode point wraps to the first point's
        # owner — the same owner owned_width charges the wrap interval to.
        ring = ring_with("a", "b", vnodes=8)
        assert ring.primary(point_tag(RING_SIZE - 1)) == ring._owners[0]
        assert ring.primary(point_tag(0)) == ring._owners[0]

    def test_owned_widths_are_exact_and_partition_the_ring(self):
        ring = ring_with("a", "b", "c", vnodes=8)
        widths = {s: ring.owned_width(s) for s in ring.shards}
        assert sum(widths.values()) == RING_SIZE
        assert all(w > 0 for w in widths.values())
        # The wrap slice (from the last point through zero to the first)
        # is charged exactly once, to the first point's owner.
        wrap_width = ring._points[0] + RING_SIZE - ring._points[-1]
        assert widths[ring._owners[0]] >= wrap_width

    def test_contains_matches_owner_diff_on_a_wrap_range(self):
        rng = MigrationRange(
            0, RING_SIZE - 10, 10, ("a",), ("b",)
        )
        assert rng.contains(RING_SIZE - 1)
        assert rng.contains(0)
        assert rng.contains(10)
        assert not rng.contains(11)
        assert not rng.contains(RING_SIZE - 10)
        assert rng.width == 20


@for_all(
    lists_of(integers(1, 40), min_len=1, max_len=6),
    integers(1, 16),
    runs=40,
)
def test_weighted_load_shares_partition_the_ring(tenth_weights, vnodes):
    """Under any weighted membership the per-shard owned widths are an
    exact integer partition of the ring, so the float shares sum to 1."""
    ring = ShardRing(vnodes=vnodes)
    for i, tenths in enumerate(tenth_weights):
        ring.add_shard(f"prop-{i}", weight=tenths / 10.0)
    assert sum(ring.owned_width(s) for s in ring.shards) == RING_SIZE
    assert sum(ring.load_share(s) for s in ring.shards) == pytest.approx(1.0)
    for shard in ring.shards:
        assert ring.owned_width(shard) > 0


class TestAbortContract:
    def test_abort_without_transition_raises(self):
        ring = ring_with("a", "b")
        with pytest.raises(MigrationStateError, match="no transition"):
            ring.abort_transition()

    def test_double_abort_raises(self):
        ring = ring_with("a", "b")
        ring.begin_join("c", 2)
        ring.abort_transition()
        with pytest.raises(MigrationStateError, match="no transition"):
            ring.abort_transition()

    def test_migrator_double_abort_surfaces(self):
        # The ring no longer swallows a second abort, and neither does
        # the migrator: abort() marks the migration finished, so another
        # abort (or a finish) raises instead of re-running cleanup.
        d = make_cluster(n_shards=3, replication_factor=2, seed=b"dbl-abort")
        router = raw_router(d)
        for i in range(8):
            assert router.call(make_put(i, prefix=b"dbl")).accepted
        migrator = d.cluster.begin_add_shard()
        d.cluster.abort_add_shard(migrator)
        assert not d.cluster.ring.in_transition
        with pytest.raises(MigrationStateError):
            migrator.abort()
        with pytest.raises(MigrationStateError):
            migrator.finish()


class TestClusterPlan:
    def warm(self, seed, n_shards=3):
        d = make_cluster(n_shards=n_shards, replication_factor=2, seed=seed)
        router = raw_router(d)
        puts = [make_put(i, prefix=b"plan") for i in range(24)]
        for put in puts:
            assert router.call(put).accepted
        return d, router, puts

    def ownership_exact(self, cluster, puts):
        return all(
            cluster.holders_of(p.tag) == sorted(cluster.owners_of(p.tag))
            for p in puts
        )

    def test_plan_spawns_joiners_and_moves_once(self):
        d, router, puts = self.warm(b"cluster-plan")
        plan = (
            TopologyPlan()
            .join(None, weight=2.0).join("big-2")
            .leave("shard-0").reweight("shard-1", 0.5)
        )
        migrator = d.cluster.begin_plan(plan)
        assert migrator.action == "plan"
        assert "big-2" in migrator.joiners and len(migrator.joiners) == 2
        assert migrator.leavers == frozenset({"shard-0"})
        migrator.run()
        assert "shard-0" not in d.cluster.shards
        assert "big-2" in d.cluster.shards
        assert d.cluster.ring.weight_of("big-2") == 1.0
        assert d.cluster.ring.weight_of("shard-1") == 0.5
        assert self.ownership_exact(d.cluster, puts)
        for put in puts:
            assert router.call(make_get(put)).found

    def test_abort_plan_despawns_every_joiner(self):
        d, router, puts = self.warm(b"cluster-plan-abort")
        before = set(d.cluster.shards)
        owners_before = {p.tag: d.cluster.owners_of(p.tag) for p in puts}
        plan = TopologyPlan().join(None).join(None).leave("shard-2")
        migrator = d.cluster.begin_plan(plan)
        for _ in range(len(migrator.pending_ranges()) // 2):
            migrator.step()
        d.cluster.abort_plan(migrator)
        assert set(d.cluster.shards) == before
        assert not d.cluster.ring.in_transition
        assert owners_before == {
            p.tag: d.cluster.owners_of(p.tag) for p in puts
        }
        for put in puts:
            assert router.call(make_get(put)).found


class TestSessionTopology:
    def warm_session(self, seed, shards=3):
        session = connect(shards=shards, replication_factor=2, seed=seed,
                          tracing=False)

        @session.mark(version="1.0")
        def plan_kernel(data: bytes) -> bytes:
            return bytes(b ^ 0x3C for b in data)

        inputs = [i.to_bytes(4, "big") * 16 for i in range(24)]
        values = plan_kernel.map(inputs)
        session.flush_puts()
        return session, plan_kernel, inputs, values

    def test_apply_topology_reports_and_serves(self):
        session, kernel, inputs, values = self.warm_session(b"sess-plan")
        plan = (
            TopologyPlan().join("grown", weight=2.0).join(None)
            .leave("shard-0").reweight("shard-1", 0.5)
        )
        report = session.apply_topology(plan)
        assert isinstance(report, TopologyReport)
        assert report.action == "apply_topology"
        assert report.ranges_moved > 0
        assert kernel.map(inputs) == values
        keys = session.metrics.snapshot()
        assert any(k.startswith("store.grown.") for k in keys)
        assert not any(k.startswith("store.shard-0.") for k in keys)

    def test_rebalance_with_weights_moves_via_one_window(self):
        session, kernel, inputs, values = self.warm_session(b"sess-rew")
        report = session.rebalance(weights={"shard-0": 3.0})
        assert report.action == "rebalance"
        assert session.cluster.ring.weight_of("shard-0") == 3.0
        assert session.cluster.ring.load_share("shard-0") > 1 / 3
        assert kernel.map(inputs) == values

    def test_rebalance_to_current_weights_is_a_noop(self):
        session, *_ = self.warm_session(b"sess-rew-noop")
        report = session.rebalance(weights={"shard-1": 1.0})
        assert report.action == "rebalance"
        assert report.entries_moved == 0
        assert report.ranges_moved == 0
        assert not session.cluster.ring.in_transition
