"""Per-(source, dest) fault counters: the regression pinning the new
edge-scoped semantics against the old global-counter behaviour."""

from repro.net.transport import FaultInjector, Network
from repro.sgx.cost_model import SimClock


def make_net(injector):
    net = Network(fault_injector=injector)
    clock = SimClock()
    a = net.endpoint("a", clock)
    b = net.endpoint("b", clock)
    c = net.endpoint("c", clock)
    return net, a, b, c


class TestEdgeScopedCounters:
    def test_each_edge_counts_independently(self):
        injector = FaultInjector()
        net, a, b, c = make_net(injector)
        a.send("b", b"x")
        a.send("b", b"x")
        a.send("c", b"x")
        assert injector.edge_count("a", "b") == 2
        assert injector.edge_count("a", "c") == 1
        assert injector.edge_count("b", "a") == 0  # direction matters

    def test_plain_int_rule_matches_nth_message_on_every_edge(self):
        injector = FaultInjector(drop_indices={0})
        net, a, b, c = make_net(injector)
        a.send("b", b"x")  # dropped: first a->b
        a.send("c", b"x")  # dropped: first a->c (own counter!)
        a.send("b", b"x")  # delivered: second a->b
        assert b.pending() == 1
        assert c.pending() == 0
        assert net.messages_dropped == 2

    def test_tuple_rule_matches_one_edge_only(self):
        injector = FaultInjector(drop_indices={("a", "b", 0)})
        net, a, b, c = make_net(injector)
        a.send("c", b"x")  # untouched: rule names a->b
        a.send("b", b"x")  # dropped
        a.send("b", b"x")  # delivered
        assert c.pending() == 1
        assert b.pending() == 1

    def test_old_global_counter_would_have_shifted_this_rule(self):
        # Under the historical single global counter, interleaving
        # unrelated traffic shifted which message a rule hit.  Pin the
        # new behaviour: the rule below targets the 2nd a->b message and
        # keeps doing so no matter how much a->c chatter interleaves.
        injector = FaultInjector(drop_indices={("a", "b", 1)})
        net, a, b, c = make_net(injector)
        a.send("b", b"first")
        for _ in range(5):  # unrelated traffic that used to shift rules
            a.send("c", b"noise")
        a.send("b", b"second")  # edge index 1: dropped
        a.send("b", b"third")
        assert [payload for _s, payload in [b.recv(), b.recv()]] == [
            b"first", b"third",
        ]
        assert c.pending() == 5

    def test_dead_address_drop_does_not_consume_rule_indices(self):
        # Messages to dead addresses still advance the edge counter
        # (the send happened), so revival picks up where traffic left off.
        injector = FaultInjector(drop_indices={("a", "b", 2)})
        net, a, b, c = make_net(injector)
        a.send("b", b"0")
        injector.kill("b")
        a.send("b", b"1")  # dropped: dead, but still edge index 1
        injector.revive("b")
        a.send("b", b"2")  # edge index 2: dropped by rule
        a.send("b", b"3")
        assert [b.recv()[1], b.recv()[1]] == [b"0", b"3"]

    def test_corrupt_rule_is_edge_scoped_too(self):
        injector = FaultInjector(corrupt_indices={("a", "c", 0)})
        net, a, b, c = make_net(injector)
        a.send("b", b"\x00\x01")
        a.send("c", b"\x00\x01")
        assert b.recv()[1] == b"\x00\x01"
        assert c.recv()[1] == b"\x00\xfe"  # last byte flipped
