"""Hardened RPC client: retry/backoff, idempotent ids, duplicate and
reordered responses, stray-correlation-id safety."""

import pytest

from repro.errors import ProtocolError, RetryExhaustedError, TransportError
from repro.net.messages import (
    GetRequest,
    GetResponse,
    PutRequest,
    PutResponse,
)
from repro.net.rpc import RetryPolicy, RpcClient, RpcServer
from repro.net.transport import FaultInjector, Network
from repro.sgx.cost_model import SimClock
from repro.store.resultstore import plain_channel_pair

TAG = b"\x01" * 32


class _RawChannel:
    """A channel with no sequencing or crypto at all: wire duplicates
    decrypt fine, so only the client's correlation-id dedup stands
    between a replayed response and the wrong waiter."""

    def __init__(self):
        self.records_protected = 0

    def protect(self, payload: bytes) -> bytes:
        self.records_protected += 1
        return payload

    def unprotect(self, record: bytes) -> bytes:
        return record


def make_rpc(handler, fault_injector=None, retry_policy=None, sequenced=True):
    clock = SimClock()
    net = Network(fault_injector=fault_injector)
    client_ep = net.endpoint("client", clock)
    server_ep = net.endpoint("server", clock)
    if sequenced:
        client_chan, server_chan = plain_channel_pair(clock, b"rpc-hardening")
    else:
        client_chan, server_chan = _RawChannel(), _RawChannel()
    server = RpcServer(server_ep, server_chan, handler)
    net.set_reactor("server", server)
    client = RpcClient(
        client_ep, client_chan, "server", clock=clock, retry_policy=retry_policy,
    )
    return client, server, net


def put_request(payload: bytes = b"sealed") -> PutRequest:
    return PutRequest(
        tag=TAG, challenge=b"r" * 16, wrapped_key=b"k" * 32,
        sealed_result=payload, app_id="app",
    )


class TestRetry:
    def test_retry_succeeds_after_single_drop(self):
        client, server, _ = make_rpc(
            lambda msg: GetResponse(found=False),
            fault_injector=FaultInjector(drop_indices={("client", "server", 0)}),
            retry_policy=RetryPolicy(max_attempts=3),
        )
        response = client.call(GetRequest(tag=TAG))
        assert response == GetResponse(found=False)
        assert client.retries == 1
        assert client.backoff_seconds_total > 0
        assert server.requests_served == 1  # first copy never arrived

    def test_exhausted_retries_raise_retry_exhausted(self):
        injector = FaultInjector()
        injector.kill("server")
        client, _, _ = make_rpc(
            lambda msg: GetResponse(found=False),
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            client.call(GetRequest(tag=TAG))
        assert client.retries == 2
        # RetryExhaustedError IS a TransportError: router failover code
        # that catches TransportError needs no special case.
        assert isinstance(excinfo.value, TransportError)

    def test_no_policy_keeps_fail_fast_behaviour(self):
        injector = FaultInjector()
        injector.kill("server")
        client, _, _ = make_rpc(lambda msg: GetResponse(found=False),
                                fault_injector=injector)
        with pytest.raises(TransportError):
            client.call(GetRequest(tag=TAG))
        assert client.retries == 0

    def test_backoff_is_deterministic(self):
        def build_and_fail():
            injector = FaultInjector()
            injector.kill("server")
            client, _, _ = make_rpc(
                lambda msg: GetResponse(found=False),
                fault_injector=injector,
                retry_policy=RetryPolicy(max_attempts=4),
            )
            with pytest.raises(RetryExhaustedError):
                client.call(GetRequest(tag=TAG))
            return client.backoff_seconds_total

        assert build_and_fail() == build_and_fail()

    def test_protocol_errors_not_retried_by_default(self):
        calls = []

        def handler(msg):
            calls.append(msg)
            raise RuntimeError("boom")

        client, _, _ = make_rpc(handler, retry_policy=RetryPolicy(max_attempts=3))
        with pytest.raises(ProtocolError):
            client.call(GetRequest(tag=TAG))
        assert len(calls) == 1

    def test_protocol_errors_retried_when_opted_in(self):
        calls = []

        def handler(msg):
            calls.append(msg)
            if len(calls) < 2:
                raise RuntimeError("transient")
            return GetResponse(found=False)

        client, _, _ = make_rpc(
            handler,
            retry_policy=RetryPolicy(max_attempts=3, retry_protocol_errors=True),
        )
        assert client.call(GetRequest(tag=TAG)) == GetResponse(found=False)
        assert len(calls) == 2


class TestIdempotentPutRetry:
    def test_retried_put_reuses_correlation_id(self):
        seen_ids = []

        def handler(msg):
            seen_ids.append(msg.request_id)
            return PutResponse(accepted=True, reason="stored")

        # Drop the first response: the request lands twice server-side,
        # both under the SAME id — the store's duplicate check makes the
        # second a no-op "already stored".
        client, server, _ = make_rpc(
            handler,
            fault_injector=FaultInjector(drop_indices={("server", "client", 0)}),
            retry_policy=RetryPolicy(max_attempts=3),
        )
        response = client.call(put_request())
        assert isinstance(response, PutResponse) and response.accepted
        assert server.requests_served == 2
        assert len(set(seen_ids)) == 1  # one correlation id, both copies


class TestDuplicatedAndReorderedResponses:
    def test_wire_duplicated_response_rejected_by_sequenced_channel(self):
        # Duplicate the response record on the wire: the channel's
        # sequence check rejects the replay; the call itself succeeds.
        client, _, _ = make_rpc(
            lambda msg: GetResponse(found=False),
            fault_injector=FaultInjector(plan=_DuplicateResponses()),
        )
        assert client.call(GetRequest(tag=TAG)) == GetResponse(found=False)
        drained = client.drain_responses()
        assert drained == []
        assert client.records_rejected == 1

    def test_duplicate_id_dropped_on_unsequenced_channel(self):
        # Without channel sequencing the duplicate record decrypts fine —
        # the id-level dedup must still stop it from reaching anyone.
        client, _, _ = make_rpc(
            lambda msg: GetResponse(found=False),
            fault_injector=FaultInjector(plan=_DuplicateResponses()),
            sequenced=False,
        )
        assert client.call(GetRequest(tag=TAG)) == GetResponse(found=False)
        assert client.drain_responses() == []
        assert client.duplicates_dropped == 1

    def test_replayed_id_never_delivered_to_next_waiter(self):
        # A stale duplicate of call #1's response must not satisfy call #2.
        client, _, _ = make_rpc(
            _tag_echo_handler,
            fault_injector=FaultInjector(
                plan=_DuplicateResponses(), drop_indices={("client", "server", 1)},
            ),
            sequenced=False,
        )
        first = client.call(GetRequest(tag=b"\xaa" * 32))
        assert first.sealed_result == b"\xaa" * 32
        # Call 2's request is dropped; the only inbox traffic a waiter
        # could mistakenly consume would be a replay of response #1.
        with pytest.raises(TransportError):
            client.call(GetRequest(tag=b"\xbb" * 32))

    def test_reordered_oneway_responses_matched_by_id(self):
        client, _, _ = make_rpc(
            lambda msg: PutResponse(accepted=True),
            fault_injector=FaultInjector(plan=_DelaySecondResponse()),
            sequenced=False,
        )
        id_a = client.send_oneway(put_request(b"a"))
        id_b = client.send_oneway(put_request(b"b"))
        client._endpoint.network.flush_delayed()
        drained = client.drain_responses()
        assert sorted(r.request_id for r in drained) == sorted([id_a, id_b])

    def test_drain_responses_hands_out_each_id_once(self):
        client, _, _ = make_rpc(
            lambda msg: PutResponse(accepted=True),
            fault_injector=FaultInjector(plan=_DuplicateResponses()),
            sequenced=False,
        )
        request_id = client.send_oneway(put_request())
        drained = client.drain_responses()
        assert [r.request_id for r in drained] == [request_id]
        assert client.drain_responses() == []
        assert client.duplicates_dropped == 1


def _tag_echo_handler(msg):
    return GetResponse(found=True, challenge=b"", wrapped_key=b"",
                       sealed_result=msg.tag)


class _DuplicateResponses:
    """Plan hook: duplicate every server->client message."""

    def decide(self, source, dest, index, size):
        from repro.net.transport import DELIVER, FaultDecision
        if source == "server":
            return FaultDecision(duplicate=1)
        return DELIVER


class _DelaySecondResponse:
    """Plan hook: hold the second server->client message back."""

    def decide(self, source, dest, index, size):
        from repro.net.transport import DELIVER, FaultDecision
        if source == "server" and index == 1:
            return FaultDecision(delay=5)
        return DELIVER
