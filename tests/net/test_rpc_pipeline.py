"""Multi-slot RPC pipelining: submit()/wait() correlation, retries,
interleaving with the synchronous surface, and parking semantics."""

import pytest

from repro.errors import ProtocolError, TransportError
from repro.net.messages import (
    BatchGetRequest,
    BatchGetResponse,
    GetRequest,
    GetResponse,
    PutRequest,
    PutResponse,
)
from repro.net.rpc import RetryPolicy, RpcClient, RpcServer
from repro.net.transport import FaultInjector, Network
from repro.sgx.cost_model import SimClock
from repro.store.resultstore import plain_channel_pair


def make_rpc(handler, fault_injector=None, retry_policy=None):
    clock = SimClock()
    net = Network(fault_injector=fault_injector)
    client_ep = net.endpoint("client", clock)
    server_ep = net.endpoint("server", clock)
    client_chan, server_chan = plain_channel_pair(clock, b"rpc-pipe-test")
    server = RpcServer(server_ep, server_chan, handler)
    net.set_reactor("server", server)
    client = RpcClient(client_ep, client_chan, "server")
    if retry_policy is not None:
        client.retry_policy = retry_policy
    return client, server


def echo_handler(msg):
    """Answer each GET with a response naming the tag it asked about."""
    return GetResponse(found=True, sealed_result=b"res:" + msg.tag)


class TestSubmitWait:
    def test_depth_n_responses_correlate(self):
        client, server = make_rpc(echo_handler)
        tags = [bytes([i]) * 32 for i in range(8)]
        handles = [client.submit(GetRequest(tag=t)) for t in tags]
        assert client.max_inflight == 8
        for handle, tag in zip(handles, tags):
            response = client.wait(handle)
            assert response.sealed_result == b"res:" + tag
        assert server.requests_served == 8
        assert client.submits == 8

    def test_wait_out_of_order(self):
        client, _ = make_rpc(echo_handler)
        tags = [bytes([i]) * 32 for i in range(6)]
        handles = [client.submit(GetRequest(tag=t)) for t in tags]
        for handle, tag in sorted(zip(handles, tags), reverse=True):
            assert client.wait(handle).sealed_result == b"res:" + tag

    def test_wait_unknown_id_raises(self):
        client, _ = make_rpc(echo_handler)
        with pytest.raises(ProtocolError, match="never submitted"):
            client.wait(12345)

    def test_double_wait_raises(self):
        client, _ = make_rpc(echo_handler)
        handle = client.submit(GetRequest(tag=b"\x01" * 32))
        client.wait(handle)
        with pytest.raises(ProtocolError, match="never submitted"):
            client.wait(handle)

    def test_sync_call_between_submit_and_wait(self):
        """A blocking call() must not swallow pipelined responses."""
        client, _ = make_rpc(echo_handler)
        handle = client.submit(GetRequest(tag=b"\x01" * 32))
        mid = client.call(GetRequest(tag=b"\x02" * 32))
        assert mid.sealed_result == b"res:" + b"\x02" * 32
        assert client.wait(handle).sealed_result == b"res:" + b"\x01" * 32

    def test_drain_responses_does_not_steal_pipelined(self):
        """One-way PUT draining must leave submitted GETs waitable."""

        def handler(msg):
            if isinstance(msg, PutRequest):
                return PutResponse(accepted=True)
            return echo_handler(msg)

        client, _ = make_rpc(handler)
        handle = client.submit(GetRequest(tag=b"\x03" * 32))
        client.send_oneway(
            PutRequest(tag=b"\x04" * 32, challenge=b"c" * 32,
                       wrapped_key=b"k" * 16, sealed_result=b"s")
        )
        drained = client.drain_responses()
        assert all(isinstance(r, PutResponse) for r in drained)
        assert client.wait(handle).sealed_result == b"res:" + b"\x03" * 32


def batch_echo_handler(msg):
    if isinstance(msg, BatchGetRequest):
        return BatchGetResponse(
            items=tuple(echo_handler(item) for item in msg.items)
        )
    return echo_handler(msg)


class TestGroupedGets:
    def test_plan_gets_is_one_group_preserving_order(self):
        client, _ = make_rpc(batch_echo_handler)
        requests = [GetRequest(tag=bytes([i]) * 32) for i in range(5)]
        assert client.plan_gets(requests) == [[0, 1, 2, 3, 4]]
        assert client.plan_gets([]) == []

    def test_group_ships_one_record_and_unpacks_in_order(self):
        client, server = make_rpc(batch_echo_handler)
        tags = [bytes([i]) * 32 for i in range(6)]
        handle = client.submit_gets([GetRequest(tag=t) for t in tags])
        responses = client.wait_gets(handle, len(tags))
        assert [r.sealed_result for r in responses] == [
            b"res:" + t for t in tags
        ]
        assert server.requests_served == 1  # one batch record for the lot

    def test_single_item_group_skips_the_batch_envelope(self):
        client, _ = make_rpc(echo_handler)  # no batch support needed
        handle = client.submit_gets([GetRequest(tag=b"\x0a" * 32)])
        responses = client.wait_gets(handle, 1)
        assert responses[0].sealed_result == b"res:" + b"\x0a" * 32

    def test_item_count_mismatch_raises(self):
        client, _ = make_rpc(batch_echo_handler)
        tags = [bytes([i]) * 32 for i in range(3)]
        handle = client.submit_gets([GetRequest(tag=t) for t in tags])
        with pytest.raises(ProtocolError):
            client.wait_gets(handle, 7)

    def test_non_batch_reply_to_group_raises(self):
        client, _ = make_rpc(echo_handler)  # answers batches with... a GET?
        tags = [bytes([i]) * 32 for i in range(2)]
        handle = client.submit_gets([GetRequest(tag=t) for t in tags])
        with pytest.raises(ProtocolError):
            client.wait_gets(handle, 2)

    def test_groups_interleave_with_single_slots(self):
        client, _ = make_rpc(batch_echo_handler)
        group = client.submit_gets(
            [GetRequest(tag=bytes([i]) * 32) for i in range(2)]
        )
        single = client.submit(GetRequest(tag=b"\x63" * 32))
        assert client.wait(single).sealed_result == b"res:" + b"\x63" * 32
        responses = client.wait_gets(group, 2)
        assert responses[0].sealed_result == b"res:" + bytes([0]) * 32


class TestPipelineRetries:
    def test_dropped_submit_retried_by_wait(self):
        client, server = make_rpc(
            echo_handler,
            fault_injector=FaultInjector(drop_indices={0}),
            retry_policy=RetryPolicy(max_attempts=3),
        )
        handle = client.submit(GetRequest(tag=b"\x05" * 32))
        response = client.wait(handle)
        assert response.sealed_result == b"res:" + b"\x05" * 32
        # The retry resends under the same correlation id; index-0 drops
        # apply per edge, so both the first request and the first reply
        # were lost before an attempt got through.
        assert server.requests_served >= 1

    def test_exhausted_retries_surface_and_clear_slot(self):
        client, _ = make_rpc(
            echo_handler,
            fault_injector=FaultInjector(drop_indices={0, 1, 2}),
            retry_policy=RetryPolicy(max_attempts=2),
        )
        handle = client.submit(GetRequest(tag=b"\x06" * 32))
        with pytest.raises(TransportError):
            client.wait(handle)
        # The slot is released: a second wait is a protocol error, not a hang.
        with pytest.raises(ProtocolError, match="never submitted"):
            client.wait(handle)

    def test_duplicate_responses_to_pipelined_request_dropped(self):
        from repro.simtest.schedule import FaultPlan

        client, _ = make_rpc(
            echo_handler,
            fault_injector=FaultInjector(
                plan=FaultPlan(seed=7, drop_rate=0.0, duplicate_rate=1.0,
                               delay_rate=0.0, corrupt_rate=0.0)
            ),
        )
        handle = client.submit(GetRequest(tag=b"\x07" * 32))
        assert client.wait(handle).sealed_result == b"res:" + b"\x07" * 32
        # Duplicated replies are rejected by the channel's replay window
        # (surfacing as uncorrelated errors at most) — never re-delivered
        # as if they answered the pipelined request.
        from repro.net.messages import GetResponse as GR
        assert not any(isinstance(r, GR) for r in client.drain_responses())

    def test_snapshot_exports_pipeline_counters(self):
        client, _ = make_rpc(echo_handler)
        handles = [
            client.submit(GetRequest(tag=bytes([i]) * 32)) for i in range(4)
        ]
        for handle in handles:
            client.wait(handle)
        snap = client.snapshot()
        assert snap["rpc.pipelined_submits"] == 4
        assert snap["rpc.pipeline_max_inflight"] == 4
