"""Property-based round trips for the wire framing layer."""

import pytest

from repro.errors import SerializationError
from repro.net.framing import FieldReader, FieldWriter

from ..proptest import byte_strings, for_all, integers, lists_of, sampled_from

# A random message schema: a list of (kind, value) fields.
_FIELD_KINDS = ("u8", "u32", "u64", "boolean", "blob", "text")


def _field_gen():
    kind = sampled_from(_FIELD_KINDS)
    payload = byte_strings(max_len=24)
    number = integers(0, 2**32 - 1)

    def sample(rng):
        k = kind(rng)
        if k == "u8":
            return (k, rng.randint(0, 255))
        if k == "u32":
            return (k, number(rng))
        if k == "u64":
            return (k, rng.randint(0, 2**64 - 1))
        if k == "boolean":
            return (k, rng.random() < 0.5)
        if k == "blob":
            return (k, payload(rng))
        return (k, payload(rng).hex())  # valid UTF-8 text

    def shrinker(value):
        k, v = value
        if k in ("u8", "u32", "u64") and v:
            yield (k, 0)
        if k == "boolean" and v:
            yield (k, False)
        if k in ("blob", "text") and v:
            yield (k, v[: len(v) // 2])

    from ..proptest import Gen
    return Gen(sample, shrinker)


FIELDS = lists_of(_field_gen(), max_len=6)


def _encode(fields) -> bytes:
    writer = FieldWriter()
    for kind, value in fields:
        getattr(writer, kind)(value)
    return writer.getvalue()


def _decode(data: bytes, fields):
    reader = FieldReader(data)
    out = [(kind, getattr(reader, kind)()) for kind, _ in fields]
    reader.expect_end()
    return out


class TestFraming:
    @staticmethod
    @for_all(FIELDS, runs=60)
    def test_reader_writer_roundtrip(fields):
        assert _decode(_encode(fields), fields) == fields

    @staticmethod
    @for_all(lists_of(_field_gen(), min_len=1, max_len=6), runs=60)
    def test_truncation_always_detected(fields):
        data = _encode(fields)
        assert data  # at least one field => at least one byte
        with pytest.raises(SerializationError):
            _decode(data[:-1], fields)

    @staticmethod
    @for_all(FIELDS, byte_strings(min_len=1, max_len=8), runs=40)
    def test_trailing_garbage_always_detected(fields, garbage):
        with pytest.raises(SerializationError):
            _decode(_encode(fields) + garbage, fields)
