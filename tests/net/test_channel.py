"""Secure channel: attested handshake, records, replay, MITM."""

import pytest

from repro.errors import AttestationError, ChannelError
from repro.net.channel import NullChannelEndpoint, establish
from repro.sgx.platform import SgxPlatform


@pytest.fixture
def platform():
    return SgxPlatform(seed=b"channel-tests")


@pytest.fixture
def enclaves(platform):
    client = platform.create_enclave("client", b"client-code")
    server = platform.create_enclave("server", b"server-code")
    return client, server


@pytest.fixture
def channel(enclaves):
    return establish(*enclaves)


class TestHandshake:
    def test_establish_reports_peer_identities(self, enclaves, channel):
        client, server = enclaves
        assert channel.client_measurement == client.measurement
        assert channel.server_measurement == server.measurement

    def test_cross_platform_rejected(self, platform):
        other = SgxPlatform(seed=b"other-machine")
        a = platform.create_enclave("a", b"x")
        b = other.create_enclave("b", b"y")
        with pytest.raises(ChannelError):
            establish(a, b)

    def test_handshake_is_keyed_per_session(self, enclaves):
        ch1 = establish(*enclaves)
        ch2 = establish(*enclaves)
        r1 = ch1.client.protect(b"hello")
        r2 = ch2.client.protect(b"hello")
        assert r1 != r2  # fresh ephemeral keys every handshake


class TestRecords:
    def test_roundtrip_both_directions(self, channel):
        record = channel.client.protect(b"request")
        assert channel.server.unprotect(record) == b"request"
        reply = channel.server.protect(b"response")
        assert channel.client.unprotect(reply) == b"response"

    def test_sequencing(self, channel):
        for i in range(5):
            record = channel.client.protect(f"msg{i}".encode())
            assert channel.server.unprotect(record) == f"msg{i}".encode()

    def test_replay_rejected(self, channel):
        record = channel.client.protect(b"once")
        channel.server.unprotect(record)
        with pytest.raises(ChannelError):
            channel.server.unprotect(record)

    def test_stale_reordered_record_rejected(self, channel):
        first = channel.client.protect(b"one")
        second = channel.client.protect(b"two")
        # Monotonic sequencing: a newer record may arrive first (the gap
        # is tolerated — its predecessor may have been lost)...
        assert channel.server.unprotect(second) == b"two"
        # ...but the stale record can never be accepted afterwards.
        with pytest.raises(ChannelError):
            channel.server.unprotect(first)

    def test_tampered_record_rejected(self, channel):
        record = bytearray(channel.client.protect(b"payload"))
        record[-1] ^= 0xFF
        with pytest.raises(ChannelError):
            channel.server.unprotect(bytes(record))

    def test_short_record_rejected(self, channel):
        with pytest.raises(ChannelError):
            channel.server.unprotect(b"tiny")

    def test_direction_keys_differ(self, channel):
        # A client record must not open as a server record (reflection).
        record = channel.client.protect(b"data")
        with pytest.raises(ChannelError):
            channel.client.unprotect(record)

    def test_ciphertext_hides_plaintext(self, channel):
        record = channel.client.protect(b"SENSITIVE-TAG-BYTES")
        assert b"SENSITIVE-TAG-BYTES" not in record


class TestNullChannel:
    def test_passthrough(self):
        a, b = NullChannelEndpoint(), NullChannelEndpoint()
        assert b.unprotect(a.protect(b"data")) == b"data"

    def test_still_sequences(self):
        a, b = NullChannelEndpoint(), NullChannelEndpoint()
        r1 = a.protect(b"one")
        a.protect(b"two")
        b.unprotect(r1)
        with pytest.raises(ChannelError):
            b.unprotect(r1)
