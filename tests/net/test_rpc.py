"""RPC layer: sync calls, one-way PUTs, error surfacing."""

import pytest

from repro.errors import ProtocolError, TransportError
from repro.net.messages import (
    ErrorMessage,
    GetRequest,
    GetResponse,
    PutRequest,
    PutResponse,
)
from repro.net.rpc import RpcClient, RpcServer
from repro.net.transport import FaultInjector, Network
from repro.sgx.cost_model import SimClock
from repro.store.resultstore import plain_channel_pair


def make_rpc(handler, fault_injector=None):
    clock = SimClock()
    net = Network(fault_injector=fault_injector)
    client_ep = net.endpoint("client", clock)
    server_ep = net.endpoint("server", clock)
    client_chan, server_chan = plain_channel_pair(clock, b"rpc-test")
    server = RpcServer(server_ep, server_chan, handler)
    net.set_reactor("server", server)
    client = RpcClient(client_ep, client_chan, "server")
    return client, server


class TestCalls:
    def test_request_response(self):
        def handler(msg):
            assert isinstance(msg, GetRequest)
            return GetResponse(found=False)

        client, server = make_rpc(handler)
        response = client.call(GetRequest(tag=b"\x01" * 32))
        assert response == GetResponse(found=False)
        assert server.requests_served == 1

    def test_handler_exception_becomes_error(self):
        def handler(msg):
            raise RuntimeError("store exploded")

        client, _ = make_rpc(handler)
        with pytest.raises(ProtocolError, match="store exploded"):
            client.call(GetRequest(tag=b"\x01" * 32))

    def test_error_message_raises_client_side(self):
        client, _ = make_rpc(lambda msg: ErrorMessage(code=418, detail="teapot"))
        with pytest.raises(ProtocolError, match="teapot"):
            client.call(GetRequest(tag=b""))

    def test_dropped_request_raises_transport_error(self):
        client, _ = make_rpc(
            lambda msg: GetResponse(found=False),
            fault_injector=FaultInjector(drop_indices={0}),
        )
        with pytest.raises(TransportError):
            client.call(GetRequest(tag=b""))


class TestOneWay:
    def test_send_and_drain(self):
        client, _ = make_rpc(lambda msg: PutResponse(accepted=True))
        put = PutRequest(tag=b"t" * 32, challenge=b"r" * 32,
                         wrapped_key=b"k" * 16, sealed_result=b"blob")
        client.send_oneway(put)
        client.send_oneway(put)
        responses = client.drain_responses()
        assert responses == [PutResponse(accepted=True)] * 2

    def test_drain_empty(self):
        client, _ = make_rpc(lambda msg: PutResponse(accepted=True))
        assert client.drain_responses() == []


class TestEnclaveWrapped:
    def test_wrap_factory_charges_transitions(self):
        from repro.sgx.platform import SgxPlatform

        platform = SgxPlatform(seed=b"rpc-enclave")
        enclave = platform.create_enclave("svc", b"svc-code")
        net = Network()
        client_ep = net.endpoint("client", platform.clock)
        server_ep = net.endpoint("server", platform.clock)
        client_chan, server_chan = plain_channel_pair(platform.clock, b"x")
        server = RpcServer(
            server_ep, server_chan, lambda msg: GetResponse(found=False),
            wrap_factory=lambda name, in_bytes: enclave.ecall(name, in_bytes=in_bytes),
        )
        net.set_reactor("server", server)
        client = RpcClient(client_ep, client_chan, "server")
        client.call(GetRequest(tag=b"\x00" * 32))
        assert enclave.ecall_count == 1


class TestAttachReactor:
    def test_attach_reactor_helper(self):
        from repro.net.rpc import attach_reactor

        clock = SimClock()
        net = Network()
        client_ep = net.endpoint("c", clock)
        server_ep = net.endpoint("s", clock)
        client_chan, server_chan = plain_channel_pair(clock, b"attach")
        server = RpcServer(server_ep, server_chan, lambda msg: GetResponse(found=False))
        attach_reactor(net, "s", server)
        client = RpcClient(client_ep, client_chan, "s")
        assert client.call(GetRequest(tag=b"")) == GetResponse(found=False)
