"""Loopback transport: delivery, taps, fault injection, reactors."""

import pytest

from repro.errors import TransportError
from repro.net.transport import FaultInjector, Network
from repro.sgx.cost_model import SimClock


@pytest.fixture
def clock():
    return SimClock()


class TestDelivery:
    def test_fifo_order(self, clock):
        net = Network()
        a = net.endpoint("a", clock)
        b = net.endpoint("b", clock)
        a.send("b", b"first")
        a.send("b", b"second")
        assert b.recv() == ("a", b"first")
        assert b.recv() == ("a", b"second")

    def test_empty_inbox_raises(self, clock):
        net = Network()
        a = net.endpoint("a", clock)
        with pytest.raises(TransportError):
            a.recv()

    def test_unknown_destination(self, clock):
        net = Network()
        a = net.endpoint("a", clock)
        with pytest.raises(TransportError):
            a.send("ghost", b"payload")

    def test_duplicate_address_rejected(self, clock):
        net = Network()
        net.endpoint("a", clock)
        with pytest.raises(TransportError):
            net.endpoint("a", clock)

    def test_send_charges_sender_clock(self, clock):
        net = Network()
        a = net.endpoint("a", clock)
        net.endpoint("b", clock)
        a.send("b", b"x" * 100)
        expected = clock.params.net_fixed_cycles + 100 * clock.params.net_cycles_per_byte
        assert clock.cycles == pytest.approx(expected)

    def test_counters(self, clock):
        net = Network()
        a = net.endpoint("a", clock)
        net.endpoint("b", clock)
        a.send("b", b"12345")
        assert net.messages_sent == 1
        assert net.bytes_sent == 5


class TestTaps:
    def test_tap_sees_everything(self, clock):
        net = Network()
        seen = []
        net.add_tap(lambda s, d, p: seen.append((s, d, p)))
        a = net.endpoint("a", clock)
        net.endpoint("b", clock)
        a.send("b", b"observed")
        assert seen == [("a", "b", b"observed")]


class TestFaultInjection:
    def test_drop(self, clock):
        net = Network(fault_injector=FaultInjector(drop_indices={0}))
        a = net.endpoint("a", clock)
        b = net.endpoint("b", clock)
        a.send("b", b"lost")
        a.send("b", b"kept")
        assert b.pending() == 1
        assert b.recv() == ("a", b"kept")

    def test_corrupt(self, clock):
        net = Network(fault_injector=FaultInjector(corrupt_indices={0}))
        a = net.endpoint("a", clock)
        b = net.endpoint("b", clock)
        a.send("b", b"data")
        _, payload = b.recv()
        assert payload != b"data"
        assert len(payload) == 4


class TestReactor:
    def test_reactor_runs_on_delivery(self, clock):
        net = Network()
        a = net.endpoint("a", clock)
        b = net.endpoint("b", clock)

        class Echo:
            def pump(self):
                while b.pending():
                    source, payload = b.recv()
                    b.send(source, payload[::-1])

        net.set_reactor("b", Echo())
        a.send("b", b"ping")
        assert a.recv() == ("b", b"gnip")

    def test_reactor_unknown_address(self, clock):
        net = Network()
        with pytest.raises(TransportError):
            net.set_reactor("ghost", object())


class TestDeadAddresses:
    def test_kill_drops_inbound_and_outbound(self, clock):
        net = Network()
        injector = net.ensure_fault_injector()
        a = net.endpoint("a", clock)
        b = net.endpoint("b", clock)
        injector.kill("b")
        a.send("b", b"to the dead")      # vanishes on the wire
        b.send("a", b"from the dead")    # also vanishes
        assert b.pending() == 0
        assert a.pending() == 0

    def test_revive_restores_delivery(self, clock):
        net = Network()
        injector = net.ensure_fault_injector()
        a = net.endpoint("a", clock)
        b = net.endpoint("b", clock)
        injector.kill("b")
        a.send("b", b"lost")
        injector.revive("b")
        a.send("b", b"delivered")
        assert b.recv() == ("a", b"delivered")

    def test_is_dead(self, clock):
        injector = FaultInjector()
        assert not injector.is_dead("x")
        injector.kill("x")
        assert injector.is_dead("x")
        injector.revive("x")
        assert not injector.is_dead("x")

    def test_revive_unknown_is_noop(self):
        FaultInjector().revive("never-killed")

    def test_other_traffic_unaffected(self, clock):
        net = Network()
        net.ensure_fault_injector().kill("dead")
        net.endpoint("dead", clock)
        a = net.endpoint("a", clock)
        b = net.endpoint("b", clock)
        a.send("b", b"fine")
        assert b.recv() == ("a", b"fine")

    def test_ensure_fault_injector_is_idempotent(self):
        net = Network()
        first = net.ensure_fault_injector()
        assert net.ensure_fault_injector() is first
        assert net.fault_injector is first

    def test_ensure_keeps_existing_injector(self, clock):
        injector = FaultInjector(drop_indices={0})
        net = Network(fault_injector=injector)
        assert net.ensure_fault_injector() is injector
