"""Wire messages: exhaustive roundtrips and protocol violations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.net.messages import (
    ErrorMessage,
    GetRequest,
    GetResponse,
    PutRequest,
    PutResponse,
    SyncRequest,
    SyncResponse,
    decode_message,
    encode_message,
)

EXAMPLES = [
    GetRequest(tag=b"\x01" * 32, app_id="scanner"),
    GetRequest(tag=b"", app_id=""),
    GetResponse(found=False),
    GetResponse(found=False, reason="no live owner"),
    GetResponse(found=True, challenge=b"r" * 32, wrapped_key=b"k" * 16,
                sealed_result=b"ciphertext"),
    PutRequest(tag=b"\x02" * 32, challenge=b"r" * 32, wrapped_key=b"k" * 16,
               sealed_result=b"x" * 100, app_id="app"),
    PutResponse(accepted=True),
    PutResponse(accepted=False, reason="quota exceeded"),
    SyncRequest(known_tags=(b"\x03" * 32, b"\x04" * 32), min_hits=5),
    SyncRequest(),
    SyncResponse(entries=((b"t" * 32, b"r" * 32, b"k" * 16, b"blob"),)),
    SyncResponse(),
    ErrorMessage(code=500, detail="boom"),
]


class TestRoundtrip:
    @pytest.mark.parametrize("msg", EXAMPLES, ids=lambda m: type(m).__name__)
    def test_encode_decode(self, msg):
        assert decode_message(encode_message(msg)) == msg

    @given(st.binary(max_size=64), st.text(max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_get_request_any_payload(self, tag, app_id):
        msg = GetRequest(tag=tag, app_id=app_id)
        assert decode_message(encode_message(msg)) == msg


class TestViolations:
    def test_unknown_type_byte(self):
        with pytest.raises(ProtocolError):
            decode_message(b"\xfa\x00\x00")

    def test_empty_message(self):
        with pytest.raises(Exception):
            decode_message(b"")

    def test_trailing_garbage_rejected(self):
        data = encode_message(PutResponse(accepted=True)) + b"extra"
        with pytest.raises(Exception):
            decode_message(data)

    def test_truncated_body_rejected(self):
        data = encode_message(EXAMPLES[3])[:-3]
        with pytest.raises(Exception):
            decode_message(data)
