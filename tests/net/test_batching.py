"""Correlation ids and batch messages on the RPC layer."""

import pytest

from repro.errors import ProtocolError
from repro.net.framing import FieldWriter
from repro.net.messages import (
    MAX_BATCH_ITEMS,
    BatchGetRequest,
    BatchGetResponse,
    BatchPutRequest,
    BatchPutResponse,
    ErrorMessage,
    GetRequest,
    GetResponse,
    MessageType,
    PutRequest,
    PutResponse,
    decode_message,
    encode_message,
)
from tests.net.test_rpc import make_rpc


def make_put(i: int = 0) -> PutRequest:
    return PutRequest(tag=bytes([i]) * 32, challenge=b"r" * 32,
                      wrapped_key=b"k" * 16, sealed_result=b"blob%d" % i)


class TestCorrelation:
    def test_call_skips_stale_oneway_response(self):
        """Regression: a PutResponse to an earlier async PUT must not be
        delivered as the reply to the next synchronous GET."""

        def handler(msg):
            if isinstance(msg, PutRequest):
                return PutResponse(accepted=True)
            return GetResponse(found=False)

        client, _ = make_rpc(handler)
        client.send_oneway(make_put())  # its reply now sits in the inbox
        response = client.call(GetRequest(tag=b"t" * 32))
        assert isinstance(response, GetResponse)
        # The stale reply is still available, off the critical path.
        assert client.drain_responses() == [PutResponse(accepted=True)]

    def test_server_echoes_request_id(self):
        client, _ = make_rpc(lambda msg: GetResponse(found=False))
        first = client.call(GetRequest(tag=b"a" * 32))
        second = client.call(GetRequest(tag=b"b" * 32))
        assert first.request_id != 0
        assert second.request_id == first.request_id + 1

    def test_error_for_oneway_does_not_break_next_call(self):
        """An ErrorMessage correlated to a one-way send must be buffered,
        not raised inside an unrelated synchronous call."""

        def handler(msg):
            if isinstance(msg, PutRequest):
                raise RuntimeError("put rejected late")
            return GetResponse(found=False)

        client, _ = make_rpc(handler)
        client.send_oneway(make_put())
        assert client.call(GetRequest(tag=b"t" * 32)) == GetResponse(found=False)
        (stray,) = client.drain_responses()
        assert isinstance(stray, ErrorMessage)

    def test_send_oneway_returns_correlation_id(self):
        client, _ = make_rpc(lambda msg: PutResponse(accepted=True))
        rid = client.send_oneway(make_put())
        (response,) = client.drain_responses()
        assert response.request_id == rid


class TestCallBatch:
    def test_batch_get_roundtrip(self):
        tags = []

        def handler(msg):
            assert isinstance(msg, BatchGetRequest)
            tags.extend(item.tag for item in msg.items)
            return BatchGetResponse(
                items=tuple(GetResponse(found=i % 2 == 0)
                            for i in range(len(msg.items)))
            )

        client, server = make_rpc(handler)
        requests = [GetRequest(tag=bytes([i]) * 32) for i in range(5)]
        responses = client.call_batch(requests)
        assert [r.found for r in responses] == [True, False, True, False, True]
        assert tags == [r.tag for r in requests]
        assert server.requests_served == 1  # one record for the whole batch

    def test_batch_put_roundtrip(self):
        def handler(msg):
            assert isinstance(msg, BatchPutRequest)
            return BatchPutResponse(
                items=tuple(PutResponse(accepted=True) for _ in msg.items)
            )

        client, _ = make_rpc(handler)
        responses = client.call_batch([make_put(i) for i in range(3)])
        assert responses == [PutResponse(accepted=True)] * 3

    def test_empty_batch_is_local_noop(self):
        client, server = make_rpc(lambda msg: GetResponse(found=False))
        assert client.call_batch([]) == []
        assert server.requests_served == 0

    def test_mixed_batch_rejected(self):
        client, _ = make_rpc(lambda msg: GetResponse(found=False))
        with pytest.raises(ProtocolError, match="uniform"):
            client.call_batch([GetRequest(tag=b"t" * 32), make_put()])

    def test_item_count_mismatch_rejected(self):
        def handler(msg):
            return BatchGetResponse(items=(GetResponse(found=False),))

        client, _ = make_rpc(handler)
        with pytest.raises(ProtocolError, match="items"):
            client.call_batch([GetRequest(tag=bytes([i]) * 32) for i in range(2)])

    def test_send_oneway_batch_single_record(self):
        def handler(msg):
            return BatchPutResponse(
                items=tuple(PutResponse(accepted=True) for _ in msg.items)
            )

        client, server = make_rpc(handler)
        before = client.records_sent
        rid = client.send_oneway_batch([make_put(i) for i in range(4)])
        assert client.records_sent == before + 1
        assert server.requests_served == 1
        (response,) = client.drain_responses()
        assert response.request_id == rid
        assert len(response.items) == 4


class TestBatchWireFormat:
    def test_batch_messages_roundtrip(self):
        for msg in (
            BatchGetRequest(items=(GetRequest(tag=b"t" * 32, app_id="a"),)),
            BatchGetResponse(items=(GetResponse(found=True, challenge=b"r",
                                                wrapped_key=b"k",
                                                sealed_result=b"s"),)),
            BatchPutRequest(items=(make_put(1), make_put(2))),
            BatchPutResponse(items=(PutResponse(accepted=False, reason="no"),)),
        ):
            assert decode_message(encode_message(msg)) == msg

    def test_request_id_survives_the_wire(self):
        msg = BatchGetRequest(items=(GetRequest(tag=b"t" * 32),), request_id=77)
        decoded = decode_message(encode_message(msg))
        assert decoded.request_id == 77

    def test_absurd_item_count_rejected(self):
        w = FieldWriter()
        w.u8(int(MessageType.BATCH_GET_REQUEST))
        w.u64(0)
        w.u32(MAX_BATCH_ITEMS + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_message(w.getvalue())
