"""Circuit breaker state machine: both recovery clocks."""

import pytest

from repro.net.circuit import CLOSED, HALF_OPEN, OPEN, BreakerConfig, CircuitBreaker
from repro.sgx.cost_model import SimClock


class TestConfig:
    def test_needs_a_recovery_clock(self):
        with pytest.raises(ValueError):
            BreakerConfig(reset_timeout_s=None, reset_after_skips=None)

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)


class TestSkipRecovery:
    def cfg(self):
        return BreakerConfig(
            failure_threshold=2, reset_timeout_s=None, reset_after_skips=3
        )

    def test_opens_after_threshold_failures(self):
        breaker = CircuitBreaker(self.cfg())
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 1

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(self.cfg())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_refuses_then_half_opens_after_skips(self):
        breaker = CircuitBreaker(self.cfg())
        breaker.record_failure()
        breaker.record_failure()
        refused = [breaker.allow() for _ in range(3)]
        assert refused == [False, False, False]
        assert breaker.skips == 3
        assert breaker.allow() is True  # the probe
        assert breaker.state == HALF_OPEN

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(self.cfg())
        breaker.record_failure()
        breaker.record_failure()
        for _ in range(4):
            breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow() is True

    def test_half_open_probe_failure_reopens_immediately(self):
        breaker = CircuitBreaker(self.cfg())
        breaker.record_failure()
        breaker.record_failure()
        for _ in range(4):
            breaker.allow()
        assert breaker.state == HALF_OPEN
        breaker.record_failure()  # one failure suffices in half-open
        assert breaker.state == OPEN
        assert breaker.opens == 2


class TestTimeoutRecovery:
    def test_half_opens_after_simulated_time(self):
        clock = SimClock()
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, reset_timeout_s=0.5), clock=clock
        )
        breaker.record_failure()
        assert breaker.allow() is False
        clock.charge_seconds(1.0, "other")
        assert breaker.allow() is True
        assert breaker.state == HALF_OPEN

    def test_snapshot_shape(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=1))
        breaker.record_failure()
        breaker.allow()
        snap = breaker.snapshot()
        assert snap == {"state": OPEN, "opens": 1, "skips": 1}
