"""Binary codec: roundtrips, truncation, bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.net.framing import FieldReader, FieldWriter


class TestRoundtrip:
    def test_mixed_fields(self):
        w = FieldWriter()
        w.u8(7).u32(1234).u64(2**40).boolean(True).blob(b"payload").text("héllo")
        r = FieldReader(w.getvalue())
        assert r.u8() == 7
        assert r.u32() == 1234
        assert r.u64() == 2**40
        assert r.boolean() is True
        assert r.blob() == b"payload"
        assert r.text() == "héllo"
        r.expect_end()

    @given(st.lists(st.binary(max_size=100), max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_blob_sequences(self, blobs):
        w = FieldWriter()
        for b in blobs:
            w.blob(b)
        r = FieldReader(w.getvalue())
        assert [r.blob() for _ in blobs] == blobs
        r.expect_end()

    def test_empty_blob(self):
        w = FieldWriter()
        w.blob(b"")
        r = FieldReader(w.getvalue())
        assert r.blob() == b""


class TestErrors:
    def test_truncated_read(self):
        with pytest.raises(SerializationError):
            FieldReader(b"\x00\x01").u32()

    def test_truncated_blob_body(self):
        w = FieldWriter()
        w.blob(b"abcdef")
        data = w.getvalue()[:-2]
        with pytest.raises(SerializationError):
            FieldReader(data).blob()

    def test_trailing_bytes_detected(self):
        with pytest.raises(SerializationError):
            FieldReader(b"\x01\x02").expect_end()

    def test_invalid_boolean(self):
        with pytest.raises(SerializationError):
            FieldReader(b"\x02").boolean()

    def test_invalid_utf8(self):
        w = FieldWriter()
        w.blob(b"\xff\xfe")
        with pytest.raises(SerializationError):
            FieldReader(w.getvalue()).text()

    @pytest.mark.parametrize("value,write", [
        (-1, "u8"), (256, "u8"), (-1, "u32"), (2**32, "u32"), (2**64, "u64"),
    ])
    def test_out_of_range_writes(self, value, write):
        with pytest.raises(SerializationError):
            getattr(FieldWriter(), write)(value)

    def test_remaining_counts_down(self):
        r = FieldReader(b"\x01\x02\x03")
        assert r.remaining == 3
        r.u8()
        assert r.remaining == 2
