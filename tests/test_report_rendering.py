"""Rendering tests for ``ReportMixin.table()`` on the concrete reports.

``RecoveryReport`` and ``TopologyReport`` are the two reports users see
most — ``table()`` is their CLI face, so its layout conventions are
pinned here: a title underlined with ``=``, one aligned ``name | value``
row per dataclass field, floats in ``.4f``, and no crashes on the edge
cases (all-zero reports, multi-range moves, non-ASCII shard ids).
"""

import dataclasses
import json

from repro.durable.recovery import RecoveryReport
from repro.report import ReportMixin
from repro.session import TopologyReport


def make_recovery(**overrides) -> RecoveryReport:
    base = dict(
        entries_restored=0, records_replayed=0, puts_replayed=0,
        removes_replayed=0, segments_replayed=0, records_dropped=0,
        torn_tail=False, chain_broken=False, blobs_missing=0,
        checkpoint_seq=0,
    )
    base.update(overrides)
    return RecoveryReport(**base)


def make_topology(**overrides) -> TopologyReport:
    base = dict(
        action="add_shard", shard_id="shard-3", ranges_moved=1,
        entries_moved=12, bytes_moved=4096, duplicates=0, dropped=0,
        transfers=3, batches=3, foreground_stalls=0, duration_s=0.25,
    )
    base.update(overrides)
    return TopologyReport(**base)


def parse_rows(table: str) -> dict:
    """name -> rendered value, from the body rows of a table."""
    lines = table.splitlines()
    assert lines[1] == "=" * len(lines[0])
    out = {}
    for line in lines[2:]:
        name, _, value = line.partition(" | ")
        out[name.rstrip()] = value.strip()
    return out


class TestRecoveryReportTable:
    def test_empty_report_renders_every_field(self):
        report = make_recovery()
        table = report.table()
        rows = parse_rows(table)
        assert table.splitlines()[0] == "RecoveryReport"
        assert set(rows) == {f.name for f in dataclasses.fields(report)}
        assert rows["entries_restored"] == "0"
        assert rows["torn_tail"] == "False"
        assert rows["rollback_detected"] == "False"

    def test_populated_report_values(self):
        report = make_recovery(
            entries_restored=40, records_replayed=9, puts_replayed=7,
            removes_replayed=2, records_dropped=1, torn_tail=True,
            checkpoint_seq=3,
        )
        rows = parse_rows(report.table())
        assert rows["entries_restored"] == "40"
        assert rows["records_replayed"] == "9"
        assert rows["torn_tail"] == "True"
        assert rows["checkpoint_seq"] == "3"

    def test_columns_align(self):
        table = make_recovery(entries_restored=123456).table()
        separators = {line.index(" | ") for line in table.splitlines()[2:]}
        assert len(separators) == 1


class TestTopologyReportTable:
    def test_multi_range_report(self):
        report = make_topology(ranges_moved=7, entries_moved=310,
                               batches=14, foreground_stalls=2)
        rows = parse_rows(report.table())
        assert rows["ranges_moved"] == "7"
        assert rows["entries_moved"] == "310"
        assert rows["batches"] == "14"
        assert rows["foreground_stalls"] == "2"

    def test_duration_renders_with_four_decimals(self):
        rows = parse_rows(make_topology(duration_s=0.5).table())
        assert rows["duration_s"] == "0.5000"

    def test_unicode_shard_id(self):
        report = make_topology(shard_id="shard-栈-βeta")
        table = report.table()
        rows = parse_rows(table)
        assert rows["shard_id"] == "shard-栈-βeta"
        # Width math must use the unicode value, not crash or truncate.
        assert "shard-栈-βeta" in table

    def test_rebalance_empty_shard_id(self):
        report = make_topology(action="rebalance", shard_id="",
                               ranges_moved=0, entries_moved=0,
                               bytes_moved=0, transfers=0, batches=0,
                               duration_s=0.0)
        rows = parse_rows(report.table())
        assert rows["action"] == "rebalance"
        assert rows["shard_id"] == ""
        assert rows["duration_s"] == "0.0000"


class TestToDictContract:
    def test_both_reports_are_json_ready(self):
        for report in (make_recovery(), make_topology()):
            assert isinstance(report, ReportMixin)
            round_tripped = json.loads(json.dumps(report.to_dict()))
            assert round_tripped == report.to_dict()

    def test_table_and_to_dict_agree_on_fields(self):
        report = make_topology()
        assert set(parse_rows(report.table())) == set(report.to_dict())
