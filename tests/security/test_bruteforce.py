"""§III-D: offline brute-force dictionary attacks.

"The offline brute-force dictionary attack over predictable computation
cannot be launched by an attacker who compromises the machine of
ResultStore, because both the tag and the challenge message are
protected with hardware enclaves."
"""

from repro.core.scheme import CrossAppScheme
from repro.core.tag import derive_tag
from repro.crypto.drbg import HmacDrbg
from repro.security import BruteForceAdversary

FUNC = b"\xbb" * 32
PREDICTABLE_INPUT = b"password123"  # drawn from a small dictionary
RESULT = b"derived secret"

DICTIONARY = [b"password%d" % i for i in range(200)] + [PREDICTABLE_INPUT]


def protected_entry():
    scheme = CrossAppScheme()
    tag = derive_tag(FUNC, PREDICTABLE_INPUT)
    protected = scheme.protect(
        FUNC, PREDICTABLE_INPUT, tag, RESULT, HmacDrbg(b"victim").generate
    )
    return tag, protected


class TestBruteForce:
    def test_without_challenge_the_attack_cannot_start(self):
        # The deployed system: r lives in the store *enclave*; the host
        # adversary sees only the ciphertext blob.  Guessing the input is
        # useless because the locking hash cannot be formed.
        tag, protected = protected_entry()
        adversary = BruteForceAdversary(FUNC)
        attempt = adversary.attack_without_challenge(
            tag, protected.sealed_result, DICTIONARY
        )
        assert not attempt.succeeded

    def test_with_leaked_challenge_predictable_inputs_fall(self):
        # Stronger-than-threat-model leak of r: the classic MLE bound
        # applies — *predictable* computations are brute-forceable.  This
        # is exactly why the paper keeps r inside the enclave.
        tag, protected = protected_entry()
        attempt = BruteForceAdversary(FUNC).attack_with_challenge(
            tag, protected, DICTIONARY
        )
        assert attempt.succeeded
        assert attempt.recovered == RESULT

    def test_with_leaked_challenge_unpredictable_inputs_survive(self):
        # High-entropy input not in any feasible dictionary: even the
        # leaked-r adversary fails.
        scheme = CrossAppScheme()
        secret_input = HmacDrbg(b"entropy").generate(32)
        tag = derive_tag(FUNC, secret_input)
        protected = scheme.protect(FUNC, secret_input, tag, RESULT,
                                   HmacDrbg(b"v").generate)
        attempt = BruteForceAdversary(FUNC).attack_with_challenge(
            tag, protected, DICTIONARY
        )
        assert not attempt.succeeded

    def test_wrong_function_code_blocks_even_leaked_challenge(self):
        # The adversary guesses inputs but does not own the function code:
        # its locking hashes never match.
        tag, protected = protected_entry()
        attempt = BruteForceAdversary(b"\xcc" * 32).attack_with_challenge(
            tag, protected, DICTIONARY
        )
        assert not attempt.succeeded
