"""Single point of compromise: §III-B vs §III-C.

The basic single-key design falls entirely when one application leaks
the system-wide key; the cross-application scheme confines damage to
computations the compromised party could perform anyway.
"""

from repro.core.scheme import CrossAppScheme, SingleKeyScheme
from repro.core.tag import derive_tag
from repro.crypto.drbg import HmacDrbg
from repro.errors import IntegrityError

import pytest

SYSTEM_KEY = b"shared-key-16byt"
FUNC_A = b"\x01" * 32
FUNC_B = b"\x02" * 32


def protect_under(scheme, func, inp, result, seed):
    tag = derive_tag(func, inp)
    return tag, scheme.protect(func, inp, tag, result, HmacDrbg(seed).generate)


class TestSinglePointOfCompromise:
    def test_single_key_leak_breaks_every_application(self):
        scheme = SingleKeyScheme(SYSTEM_KEY)
        tag_a, prot_a = protect_under(scheme, FUNC_A, b"input-a", b"result-a", b"a")
        tag_b, prot_b = protect_under(scheme, FUNC_B, b"input-b", b"result-b", b"b")
        # Attacker stole SYSTEM_KEY from app A; decrypts app B's results
        # without owning app B's function or input.
        attacker = SingleKeyScheme(SYSTEM_KEY)
        assert attacker.recover(b"x" * 32, b"anything", tag_b, prot_b) == b"result-b"
        assert attacker.recover(b"y" * 32, b"whatever", tag_a, prot_a) == b"result-a"

    def test_cross_app_compromise_is_contained(self):
        scheme = CrossAppScheme()
        # App A's full state is compromised: the attacker now owns
        # FUNC_A and input-a — but app B's entry stays sealed.
        tag_b, prot_b = protect_under(scheme, FUNC_B, b"input-b", b"result-b", b"b")
        with pytest.raises(IntegrityError):
            scheme.recover(FUNC_A, b"input-a", tag_b, prot_b)

    def test_cross_app_has_no_key_to_steal(self):
        # There is no long-term decryption key anywhere: each entry's key
        # is wrapped under its own computation-derived pad.
        scheme = CrossAppScheme()
        tag1, prot1 = protect_under(scheme, FUNC_A, b"m1", b"r1", b"s1")
        tag2, prot2 = protect_under(scheme, FUNC_A, b"m2", b"r2", b"s2")
        # Unwrapping entry 1 (by owning m1) yields nothing for entry 2.
        assert scheme.recover(FUNC_A, b"m1", tag1, prot1) == b"r1"
        with pytest.raises(IntegrityError):
            scheme.recover(FUNC_A, b"m1", tag2, prot2)
