"""Replay and record-splicing attacks on the secure channel."""

import pytest

from repro import Deployment
from repro.errors import ChannelError, ProtocolError
from tests.conftest import DOUBLE_DESC, double_bytes, make_libs


class _RecordingTap:
    """Captures every wire record for later replay."""

    def __init__(self):
        self.records: list[tuple[str, str, bytes]] = []

    def __call__(self, source, dest, payload):
        self.records.append((source, dest, payload))


class TestReplayAttacks:
    def test_replayed_request_is_rejected_by_the_store(self):
        d = Deployment(seed=b"replay-1")
        tap = _RecordingTap()
        d.network.add_tap(tap)
        app = d.create_application("victim", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        dedup(b"data")
        app.runtime.flush_puts()

        # The adversary (who controls the host) re-injects the captured
        # GET request verbatim from the victim's address.
        get_record = next(
            payload for source, dest, payload in tap.records
            if dest == d.store.address
        )
        victim_endpoint = next(
            ep for addr, ep in d.network._endpoints.items()
            if addr.startswith("victim")
        )
        stats_before = d.store.stats.gets
        victim_endpoint.send(d.store.address, get_record)
        # The store answered (an ErrorMessage record) but never executed
        # the replayed request against the dictionary.
        assert d.store.stats.gets == stats_before

    def test_replayed_response_is_rejected_by_the_client(self):
        d = Deployment(seed=b"replay-2")
        tap = _RecordingTap()
        d.network.add_tap(tap)
        app = d.create_application("victim", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        dedup(b"data")
        app.runtime.flush_puts()
        response_record = next(
            payload for source, dest, payload in tap.records
            if source == d.store.address
        )
        # Replay the old response into the client channel directly.
        client_channel = app.runtime.client._channel
        with pytest.raises(ChannelError):
            client_channel.unprotect(response_record)

    def test_cross_channel_splicing_rejected(self):
        # A record captured from app A's channel cannot be delivered into
        # app B's channel (different session keys).
        d = Deployment(seed=b"replay-3")
        tap = _RecordingTap()
        d.network.add_tap(tap)
        app_a = d.create_application("app-a", make_libs())
        app_b = d.create_application("app-b", make_libs())
        dedup_a = app_a.deduplicable(DOUBLE_DESC)
        dedup_a(b"data")
        record = next(p for s, dest, p in tap.records if dest == d.store.address)
        channel_b = app_b.runtime.client._channel
        with pytest.raises(ChannelError):
            channel_b.unprotect(record)

    def test_normal_operation_unaffected_after_replays(self):
        d = Deployment(seed=b"replay-4")
        tap = _RecordingTap()
        d.network.add_tap(tap)
        app = d.create_application("victim", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        dedup(b"data")
        app.runtime.flush_puts()
        # Inject one replay...
        record = next(p for s, dest, p in tap.records if dest == d.store.address)
        endpoint = next(
            ep for addr, ep in d.network._endpoints.items()
            if addr.startswith("victim")
        )
        endpoint.send(d.store.address, record)
        # ...drain the error response the store sent back, then proceed.
        while endpoint.pending():
            endpoint.recv()
        # Honest traffic still flows — but note the client channel's
        # receive counter saw nothing, so a fresh call simply works.
        assert dedup(b"data") == double_bytes(b"data")
        assert app.runtime.stats.hits == 1
