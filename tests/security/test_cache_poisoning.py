"""§III-D: cache poisoning is detected; applications never consume
poisoned results."""

from repro import Deployment
from repro.core.tag import derive_tag
from repro.core.serialization import AnyParser, default_registry
from repro.security import CachePoisoningAdversary
from repro.store.resultstore import StoreConfig
from tests.conftest import DOUBLE_DESC, double_bytes, make_libs


def fill_store(deployment, app, dedup, inputs):
    for data in inputs:
        dedup(data)
        app.runtime.flush_puts()


class TestCachePoisoning:
    def test_store_detects_blob_tampering(self):
        d = Deployment(seed=b"poison-1")
        app = d.create_application("victim", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        fill_store(d, app, dedup, [b"a", b"b", b"c"])
        adversary = CachePoisoningAdversary(d.store)
        tampered = adversary.tamper_all()
        assert tampered == 3
        # Every subsequent call detects and recomputes correctly: the
        # store drops each poisoned entry and serves a miss.
        for data in (b"a", b"b", b"c"):
            assert dedup(data) == double_bytes(data)
            app.runtime.flush_puts()
        assert d.store.stats.tamper_detected == 3
        assert app.runtime.stats.hits == 0
        assert app.runtime.stats.misses == 6
        # The re-computed results were re-stored and are usable again.
        for data in (b"a", b"b", b"c"):
            assert dedup(data) == double_bytes(data)
        assert app.runtime.stats.hits == 3

    def test_application_aead_is_last_line_of_defence(self):
        # Store-side digest disabled: poisoned bytes reach the app, whose
        # authenticated decryption rejects them (Fig. 3 "⊥ → Ret false").
        d = Deployment(seed=b"poison-2",
                       store_config=StoreConfig(verify_blob_digest=False))
        app = d.create_application("victim", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        fill_store(d, app, dedup, [b"a"])
        CachePoisoningAdversary(d.store).tamper_all()
        assert dedup(b"a") == double_bytes(b"a")
        assert app.runtime.stats.verification_failures == 1

    def test_malicious_put_cannot_replace_existing_result(self):
        # First-write-wins: a forged PUT under an existing tag is ignored.
        d = Deployment(seed=b"poison-3")
        app = d.create_application("victim", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        fill_store(d, app, dedup, [b"data"])

        func_identity = app.runtime.libraries.function_identity(DOUBLE_DESC)
        input_bytes = AnyParser(default_registry()).encode(b"data")
        tag = derive_tag(func_identity, input_bytes)

        from repro.net.messages import PutRequest

        attacker_enclave = d.platform.create_enclave("attacker", b"attacker-code")
        attacker = d.store.connect("attacker-addr", app_enclave=attacker_enclave)
        response = attacker.call(PutRequest(
            tag=tag, challenge=b"r" * 32, wrapped_key=b"k" * 16,
            sealed_result=b"forged garbage", app_id="attacker",
        ))
        assert response.reason == "already stored"
        # The honest application still gets its genuine result as a hit.
        assert dedup(b"data") == double_bytes(b"data")
        assert app.runtime.stats.verification_failures == 0

    def test_preemptive_poisoning_is_rejected_by_verification(self):
        # The attacker stores garbage under the victim's tag *before* the
        # victim ever computes: the victim's verification protocol
        # rejects it and the correct result is computed and returned.
        d = Deployment(seed=b"poison-4")
        app = d.create_application("victim", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)

        func_identity = app.runtime.libraries.function_identity(DOUBLE_DESC)
        input_bytes = AnyParser(default_registry()).encode(b"data")
        tag = derive_tag(func_identity, input_bytes)

        from repro.net.messages import PutRequest

        attacker_enclave = d.platform.create_enclave("attacker", b"attacker-code")
        attacker = d.store.connect("attacker-addr", app_enclave=attacker_enclave)
        attacker.call(PutRequest(
            tag=tag, challenge=b"r" * 32, wrapped_key=b"k" * 16,
            sealed_result=b"pre-poisoned", app_id="attacker",
        ))
        assert dedup(b"data") == double_bytes(b"data")
        assert app.runtime.stats.verification_failures == 1
