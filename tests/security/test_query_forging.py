"""§III-D: the query-forging attack fails against the cross-app scheme.

"Even if a malicious application can obtain the result ciphertext [res]
together with [k] and r by using some short information about the
computation (i.e., the tag t), it still cannot correctly decrypt them
unless it indeed performs the same computation."
"""

from repro.core.scheme import CrossAppScheme
from repro.core.tag import derive_tag
from repro.crypto.drbg import HmacDrbg
from repro.security import QueryForgingAdversary

FUNC = b"\xaa" * 32
INPUT = b"the victim's input data"
RESULT = b"the victim's computed result"


def stolen_material():
    """Everything the store-compromising adversary obtains for one entry."""
    scheme = CrossAppScheme()
    tag = derive_tag(FUNC, INPUT)
    protected = scheme.protect(FUNC, INPUT, tag, RESULT, HmacDrbg(b"victim").generate)
    return tag, protected


class TestQueryForging:
    def test_dictionary_without_true_pair_fails(self):
        tag, stolen = stolen_material()
        adversary = QueryForgingAdversary()
        guesses = [
            (FUNC, b"wrong input %d" % i) for i in range(50)
        ] + [
            (bytes([i]) * 32, INPUT) for i in range(50)  # right input, wrong func
        ]
        attempt = adversary.attack(tag, stolen, guesses)
        assert not attempt.succeeded
        assert attempt.guesses_tried == 100

    def test_owner_in_dictionary_means_attacker_could_compute_anyway(self):
        # The inherent MLE bound: if the adversary owns (func, m) it can
        # decrypt — but then it could have performed the computation
        # itself, so nothing is lost (§III-D).
        tag, stolen = stolen_material()
        attempt = QueryForgingAdversary().attack(
            tag, stolen, [(FUNC, b"guess"), (FUNC, INPUT)]
        )
        assert attempt.succeeded
        assert attempt.recovered == RESULT
        assert attempt.guesses_tried == 2

    def test_tag_leak_reveals_only_equality(self):
        # Two entries for different computations leak nothing that links
        # them: tags and ciphertexts are unrelated strings.
        tag1, stolen1 = stolen_material()
        scheme = CrossAppScheme()
        tag2 = derive_tag(FUNC, b"other input")
        stolen2 = scheme.protect(FUNC, b"other input", tag2,
                                 RESULT, HmacDrbg(b"x").generate)
        assert tag1 != tag2
        assert stolen1.sealed_result != stolen2.sealed_result
        assert len(tag1) == len(tag2)  # fixed-size: size leaks nothing
