"""Confidentiality on the wire: the host adversary observing all traffic
learns nothing about code, inputs, or results (§II-C design goal)."""

from repro import Deployment
from repro.security import WireTapAdversary
from tests.conftest import DOUBLE_DESC, double_bytes, make_libs

SECRET_INPUT = b"TOP-SECRET-INPUT-DATA-0123456789"


class TestWireTap:
    def test_no_plaintext_on_the_wire(self):
        d = Deployment(seed=b"wiretap")
        expected_result = double_bytes(SECRET_INPUT)
        tap = WireTapAdversary(known_secrets=[SECRET_INPUT, expected_result])
        d.network.add_tap(tap)

        app = d.create_application("app", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        out = dedup(SECRET_INPUT)
        app.runtime.flush_puts()
        out2 = dedup(SECRET_INPUT)
        assert out == out2 == expected_result

        assert tap.observation.total_messages >= 4  # GET/PUT + responses
        assert tap.observation.plaintext_sightings == 0

    def test_without_sgx_store_results_do_cross_in_protected_form_only(self):
        # Even in the no-SGX store variant the *result* is still the
        # app-side AEAD ciphertext [res]; only channel protection is gone.
        from repro.store.resultstore import StoreConfig

        d = Deployment(seed=b"wiretap-2", store_config=StoreConfig(use_sgx=False))
        expected_result = double_bytes(SECRET_INPUT)
        tap = WireTapAdversary(known_secrets=[expected_result])
        d.network.add_tap(tap)
        app = d.create_application("app", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        dedup(SECRET_INPUT)
        app.runtime.flush_puts()
        dedup(SECRET_INPUT)
        assert tap.observation.plaintext_sightings == 0

    def test_unic_baseline_leaks_by_contrast(self):
        from repro.baselines import UnicRuntime, UnicStore

        store = UnicStore(mac_key=b"\x00" * 32)
        runtime = UnicRuntime(store, double_bytes,
                              encode=lambda b: b, decode=lambda b: b)
        runtime.call(SECRET_INPUT, SECRET_INPUT)
        tag = next(iter(store.entries))
        assert store.leak(tag) == double_bytes(SECRET_INPUT)  # plaintext at rest
