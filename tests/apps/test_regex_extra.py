"""Additional regex-engine coverage: escapes, classes, group nesting."""

import pytest

from repro.apps.pattern.regex import Regex, pcre_exec


class TestEscapeClasses:
    @pytest.mark.parametrize("pattern,text,expected", [
        (r"\D+", b"abc", True),
        (r"^\D+$", b"ab1c", False),
        (r"\W", b"hello world", True),   # the space
        (r"^\w+$", b"hello world", False),
        (r"\S+\s\S+", b"two words", True),
        (r"\0", b"\x00", True),
        (r"\.", b"a.b", True),
        (r"\.", b"axb", False),
        (r"\\", b"back\\slash", True),
        (r"\(\)", b"()", True),
    ])
    def test_case(self, pattern, text, expected):
        assert pcre_exec(pattern, text) is expected


class TestClasses:
    @pytest.mark.parametrize("pattern,text,expected", [
        (r"[\d]", b"x5", True),
        (r"[^\d]", b"55a", True),
        (r"^[^\d]+$", b"5a", False),
        (r"[a\-z]", b"-", True),          # escaped dash is literal
        (r"[]a]", b"]", True),            # ']' first is literal
        (r"[a-c-]", b"-", True),          # trailing dash is literal
        (r"[\x30-\x39]+", b"042", True),
    ])
    def test_case(self, pattern, text, expected):
        assert pcre_exec(pattern, text) is expected


class TestGroupsAndQuantifiers:
    @pytest.mark.parametrize("pattern,text,expected", [
        (r"(a(b(c)))d", b"abcd", True),
        (r"(ab|cd)+ef", b"abcdabef", True),
        (r"(|x)y", b"y", True),           # empty alternative
        (r"x{0,2}y", b"y", True),
        (r"x{0,2}y", b"xxy", True),
        (r"^x{2}$", b"xx", True),
        (r"^x{2}$", b"x", False),
        (r"(ab){2,3}", b"ababab", True),
        (r"^(ab){2,3}$", b"ab", False),
        (r"a?b?c?", b"", True),
    ])
    def test_case(self, pattern, text, expected):
        assert pcre_exec(pattern, text) is expected

    def test_linear_on_nested_quantifiers(self):
        # A pathological backtracking pattern stays fast.
        assert Regex(r"(x*)*y").search(b"x" * 300) is False

    def test_reuse_is_safe(self):
        compiled = Regex(r"ab+c")
        assert compiled.search(b"abbbc")
        assert not compiled.search(b"ac")
        assert compiled.search(b"zzabczz")
