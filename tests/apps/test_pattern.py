"""Pattern matching: regex engine, Aho-Corasick, rulesets."""

import re as stdlib_re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.pattern import (
    AhoCorasick,
    CompiledRuleset,
    Regex,
    Rule,
    make_scan_function,
    pcre_exec,
    scan_trace,
)
from repro.errors import SpeedError


class TestRegexSemantics:
    CASES = [
        (r"abc", b"xxabcxx", True),
        (r"abc", b"ab", False),
        (r"^abc", b"abcx", True),
        (r"^abc", b"xabc", False),
        (r"abc$", b"xabc", True),
        (r"abc$", b"abcx", False),
        (r"a.c", b"azc", True),
        (r"a.c", b"a\nc", False),
        (r"[0-9]+\.[0-9]+", b"ver 1.25 ok", True),
        (r"(GET|POST) /admin", b"POST /admin HTTP/1.1", True),
        (r"(GET|POST) /admin", b"PUT /admin", False),
        (r"\d{3}-\d{4}", b"call 555-1234", True),
        (r"\d{3}-\d{4}", b"call 55-1234", False),
        (r"a{2,4}b", b"aaab", True),
        (r"a{2,4}b", b"ab", False),
        (r"a{2,4}b", b"aaaaab", True),  # unanchored: suffix "aaaab" matches
        (r"^a{2,4}b$", b"aaaaab", False),
        (r"colou?r", b"color", True),
        (r"[^a-z]{3}", b"ABC", True),
        (r"\x41\x42", b"xAB", True),
        (r"^$", b"", True),
        (r"^$", b"x", False),
        (r"a*", b"", True),
        (r"(ab)+c", b"abababc", True),
        (r"\w+@\w+\.(com|net)", b"mail bob@example.net ok", True),
        (r"\s\S\s", b"a b c", True),
        (r"[\x00-\x08]", b"\x05", True),
        (r"a|b|c", b"zzc", True),
    ]

    @pytest.mark.parametrize("pattern,text,expected", CASES)
    def test_case(self, pattern, text, expected):
        assert pcre_exec(pattern, text) is expected

    @given(st.text(alphabet="abcxyz019 ", min_size=0, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_literal_always_matches_itself(self, literal):
        assert Regex(stdlib_re.escape(literal).replace("\\ ", " ")).search(
            literal.encode()
        )

    @given(
        st.text(alphabet="abc", min_size=1, max_size=6),
        st.text(alphabet="abcd", min_size=0, max_size=16),
    )
    @settings(max_examples=80, deadline=None)
    def test_agrees_with_stdlib_on_literals(self, needle, haystack):
        assert Regex(needle).search(haystack.encode()) == bool(
            stdlib_re.search(needle.encode(), haystack.encode())
        )

    def test_no_catastrophic_backtracking(self):
        # (a+)+b against aaaa...c is exponential for backtrackers;
        # the Thompson simulation stays linear.
        assert pcre_exec(r"(a+)+b", b"a" * 200 + b"c") is False


class TestRegexErrors:
    @pytest.mark.parametrize("bad", [
        "(unclosed", "unopened)", "a{5,2}", "a{999}", "[z-a]", "[unterminated",
        "*leading", "a{,", r"tail\x0", "",
    ])
    def test_malformed_patterns_rejected(self, bad):
        if bad == "":
            assert Regex("").search(b"anything")  # empty pattern matches all
        else:
            with pytest.raises(SpeedError):
                Regex(bad)


class TestAhoCorasick:
    def test_classic_example(self):
        ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
        assert ac.contains_which(b"ushers") == {0, 1, 3}

    def test_end_offsets(self):
        ac = AhoCorasick([b"ab"])
        assert ac.search_all(b"abxab") == {0: [2, 5]}

    def test_overlapping_patterns(self):
        ac = AhoCorasick([b"aa"])
        assert ac.search_all(b"aaaa") == {0: [2, 3, 4]}

    def test_empty_pattern_rejected(self):
        with pytest.raises(SpeedError):
            AhoCorasick([b"ok", b""])

    def test_no_patterns_rejected(self):
        with pytest.raises(SpeedError):
            AhoCorasick([])

    @given(
        st.lists(st.binary(min_size=1, max_size=4), min_size=1, max_size=6),
        st.binary(max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_naive_search(self, patterns, text):
        ac = AhoCorasick(patterns)
        expected = {
            i for i, p in enumerate(patterns) if p in text
        }
        # Duplicated patterns: any index with the same bytes may report.
        found = ac.contains_which(text)
        found_bytes = {patterns[i] for i in found}
        expected_bytes = {patterns[i] for i in expected}
        assert found_bytes == expected_bytes


class TestRuleset:
    def rules(self):
        return [
            Rule(1, "literal", contents=(b"EVIL",)),
            Rule(2, "two literals", contents=(b"GET ", b"/admin")),
            Rule(3, "pcre only", pcre=r"user=\w{1,8};"),
            Rule(4, "literal + pcre", contents=(b"Host:",), pcre=r"Host: [a-z]+\.ru"),
        ]

    def test_single_content(self):
        rs = CompiledRuleset(self.rules())
        assert rs.scan(b"xxEVILxx") == [1]

    def test_all_contents_required(self):
        rs = CompiledRuleset(self.rules())
        assert rs.scan(b"GET /index") == []
        assert rs.scan(b"GET /admin HTTP/1.1") == [2]

    def test_pcre_only_rule(self):
        rs = CompiledRuleset(self.rules())
        assert rs.scan(b"user=bob;") == [3]

    def test_content_prefilter_gates_pcre(self):
        rs = CompiledRuleset(self.rules())
        assert rs.scan(b"Host: evil.ru") == [4]
        assert rs.scan(b"Host: good.com") == []
        assert rs.scan(b"no host header evil.ru") == []

    def test_multiple_rules_sorted(self):
        rs = CompiledRuleset(self.rules())
        assert rs.scan(b"EVIL GET /admin user=x; data") == [1, 2, 3]

    def test_duplicate_rule_ids_rejected(self):
        with pytest.raises(SpeedError):
            CompiledRuleset([Rule(1, "a", contents=(b"x",)),
                             Rule(1, "b", contents=(b"y",))])

    def test_rule_needs_content_or_pcre(self):
        with pytest.raises(SpeedError):
            Rule(9, "empty")

    def test_fingerprint_reflects_rules(self):
        a = CompiledRuleset(self.rules()).fingerprint()
        b = CompiledRuleset(self.rules()[:-1]).fingerprint()
        assert a != b
        assert a == CompiledRuleset(self.rules()).fingerprint()


class TestScanFunction:
    def test_make_scan_function_binds_ruleset(self):
        scan, version = make_scan_function([Rule(1, "r", contents=(b"XYZZY",))])
        assert scan(b"say XYZZY now") == [1]
        assert "rules-" in version

    def test_versions_differ_per_ruleset(self):
        _, v1 = make_scan_function([Rule(1, "r", contents=(b"A",))])
        _, v2 = make_scan_function([Rule(1, "r", contents=(b"B",))])
        assert v1 != v2

    def test_scan_trace_report(self):
        rs = CompiledRuleset([Rule(1, "r", contents=(b"HIT",))])
        report = scan_trace(rs, [b"no", b"one HIT", b"two HIT HIT"])
        assert report.packets == 3
        assert report.per_rule == {1: 2}
