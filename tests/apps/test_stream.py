"""Streaming compression API."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.compress.stream import (
    DeflateStream,
    deflate_stream,
    inflate_stream,
)
from repro.errors import SpeedError
from repro.workloads import synthetic_text


class TestStream:
    def test_one_shot_roundtrip(self):
        data = synthetic_text(50_000, seed=1)
        assert inflate_stream(deflate_stream(data, chunk_size=8192)) == data

    def test_empty_input(self):
        assert inflate_stream(deflate_stream(b"")) == b""

    @given(
        st.binary(max_size=5000),
        st.integers(min_value=1, max_value=700),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_any_chunking(self, data, chunk_size):
        assert inflate_stream(deflate_stream(data, chunk_size)) == data

    def test_incremental_writes_equal_one_shot(self):
        data = synthetic_text(10_000, seed=2)
        stream = DeflateStream(chunk_size=1024)
        pieces = []
        for offset in range(0, len(data), 333):
            pieces.append(stream.write(data[offset:offset + 333]))
        pieces.append(stream.finish())
        assert b"".join(pieces) == deflate_stream(data, chunk_size=1024)

    def test_member_count(self):
        stream = DeflateStream(chunk_size=100)
        stream.write(b"x" * 250)
        stream.finish()
        assert stream.members_emitted == 3  # 100 + 100 + 50

    def test_write_after_finish_rejected(self):
        stream = DeflateStream()
        stream.finish()
        with pytest.raises(SpeedError):
            stream.write(b"late")
        with pytest.raises(SpeedError):
            stream.finish()

    def test_bad_chunk_size(self):
        with pytest.raises(SpeedError):
            DeflateStream(chunk_size=0)

    def test_corrupt_member_magic(self):
        blob = bytearray(deflate_stream(b"payload" * 100, chunk_size=128))
        blob[0] ^= 0xFF
        with pytest.raises(SpeedError, match="magic"):
            inflate_stream(bytes(blob))

    def test_truncated_member(self):
        blob = deflate_stream(b"payload" * 100, chunk_size=128)
        with pytest.raises(SpeedError, match="truncated"):
            inflate_stream(blob[:-5])

    def test_accounting(self):
        stream = DeflateStream(chunk_size=1000)
        stream.write(synthetic_text(2500, seed=3))
        stream.finish()
        assert stream.bytes_in == 2500
        assert stream.bytes_out > 0
