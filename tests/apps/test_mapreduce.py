"""MapReduce framework and the BoW job."""

import pytest

from repro.apps.mapreduce import (
    JobStats,
    MapReduceJob,
    bag_of_words,
    bow_mapper,
    corpus_vocabulary,
    strip_markup,
    tokenize_words,
)
from repro.errors import SpeedError
from repro.workloads import synthetic_webpage


def word_count_job(n_partitions=4, combiner=True):
    return MapReduceJob(
        mapper=lambda line: ((w, 1) for w in line.split()),
        reducer=lambda key, values: sum(values),
        combiner=(lambda key, values: sum(values)) if combiner else None,
        n_partitions=n_partitions,
    )


class TestFramework:
    def test_word_count(self):
        job = word_count_job()
        out = job.run(["a b a", "b c", "a"])
        assert out == {"a": 3, "b": 2, "c": 1}

    def test_combiner_equivalence(self):
        records = ["x y x", "y z y", "x"] * 10
        with_combiner = word_count_job(combiner=True).run(records)
        without = word_count_job(combiner=False).run(records)
        assert with_combiner == without

    def test_partition_count_invariance(self):
        records = ["alpha beta", "beta gamma alpha"] * 5
        assert word_count_job(n_partitions=1).run(records) == word_count_job(
            n_partitions=8
        ).run(records)

    def test_stats(self):
        job = word_count_job()
        job.run(["a b", "c"])
        assert job.stats == JobStats(
            map_inputs=2, map_outputs=3, combine_outputs=3, reduce_groups=3
        )

    def test_empty_input(self):
        assert word_count_job().run([]) == {}

    def test_invalid_partitions(self):
        job = word_count_job(n_partitions=0)
        with pytest.raises(SpeedError):
            job.run(["x"])

    def test_non_string_keys(self):
        job = MapReduceJob(
            mapper=lambda n: [(n % 3, n)],
            reducer=lambda key, values: max(values),
            n_partitions=2,
        )
        assert job.run(list(range(10))) == {0: 9, 1: 7, 2: 8}


class TestTokenizer:
    def test_strip_markup(self):
        assert strip_markup("<p>hello <b>world</b></p>").split() == ["hello", "world"]

    def test_tokenize_lowercases(self):
        assert tokenize_words("Hello WORLD") == ["hello", "world"]

    def test_tokenize_keeps_digits_and_apostrophes(self):
        assert tokenize_words("don't stop 99 times") == ["don't", "stop", "99", "times"]

    def test_bow_mapper_emits_pairs(self):
        assert list(bow_mapper("a b a")) == [("a", 1), ("b", 1), ("a", 1)]


class TestBagOfWords:
    def test_counts(self):
        bow = bag_of_words("the cat\nthe dog\n")
        assert bow == {"cat": 1, "dog": 1, "the": 2}

    def test_deterministic_and_sorted(self):
        page = synthetic_webpage(300, seed=8)
        a, b = bag_of_words(page), bag_of_words(page)
        assert a == b
        assert list(a.keys()) == sorted(a.keys())

    def test_markup_not_counted(self):
        bow = bag_of_words("<title>secret</title>\n<p>body text</p>")
        assert "title" not in bow
        assert "p" not in bow
        assert bow["secret"] == 1

    def test_empty_document(self):
        assert bag_of_words("") == {}
        assert bag_of_words("\n \n") == {}

    def test_corpus_vocabulary_merges(self):
        merged = corpus_vocabulary([{"a": 1, "b": 2}, {"b": 3, "c": 1}])
        assert merged == {"a": 1, "b": 5, "c": 1}
