"""SIFT pipeline: determinism, scale space, detection, descriptors."""

import numpy as np
import pytest

from repro.apps.sift import (
    DetectorConfig,
    PyramidConfig,
    build_scale_space,
    detect_keypoints,
    gaussian_blur,
    gaussian_kernel,
    gradients,
    match_descriptors,
    sift,
)
from repro.errors import SpeedError
from repro.workloads import synthetic_image


@pytest.fixture(scope="module")
def image():
    return synthetic_image(96, seed=5)


@pytest.fixture(scope="module")
def features(image):
    return sift(image)


class TestGaussian:
    def test_kernel_normalised(self):
        assert gaussian_kernel(1.5).sum() == pytest.approx(1.0)

    def test_kernel_symmetric(self):
        k = gaussian_kernel(2.0)
        assert np.allclose(k, k[::-1])

    def test_bad_sigma(self):
        with pytest.raises(SpeedError):
            gaussian_kernel(0)

    def test_blur_preserves_mean(self):
        rng = np.random.default_rng(0)
        img = rng.random((32, 32))
        assert gaussian_blur(img, 2.0).mean() == pytest.approx(img.mean(), rel=0.05)

    def test_blur_reduces_variance(self):
        rng = np.random.default_rng(0)
        img = rng.random((64, 64))
        assert gaussian_blur(img, 3.0).var() < img.var()

    def test_blur_requires_2d(self):
        with pytest.raises(SpeedError):
            gaussian_blur(np.zeros(10), 1.0)

    def test_gradients_of_ramp(self):
        ramp = np.tile(np.arange(16, dtype=float), (16, 1))
        mag, ori = gradients(ramp)
        assert mag[8, 8] == pytest.approx(1.0)
        assert ori[8, 8] == pytest.approx(0.0)  # pure +x gradient


class TestScaleSpace:
    def test_octave_count_bounded_by_size(self, image):
        space = build_scale_space(image)
        assert 1 <= space.n_octaves <= PyramidConfig().max_octaves
        for octave in space.gaussians:
            assert min(octave[0].shape) >= PyramidConfig().min_size // 2

    def test_interval_counts(self, image):
        space = build_scale_space(image)
        s = space.config.scales_per_octave
        assert len(space.gaussians[0]) == s + 3
        assert len(space.dogs[0]) == s + 2

    def test_octaves_halve(self, image):
        space = build_scale_space(image)
        if space.n_octaves >= 2:
            h0 = space.gaussians[0][0].shape[0]
            h1 = space.gaussians[1][0].shape[0]
            assert h1 == (h0 + 1) // 2

    def test_uint8_and_float_agree(self, image):
        as_float = image.astype(np.float64) / 255.0
        a = build_scale_space(image)
        b = build_scale_space(as_float)
        assert np.allclose(a.gaussians[0][0], b.gaussians[0][0])

    def test_tiny_image_rejected(self):
        with pytest.raises(SpeedError):
            build_scale_space(np.zeros((8, 8)))


class TestDetection:
    def test_finds_keypoints_in_structured_image(self, image):
        space = build_scale_space(image)
        assert len(detect_keypoints(space)) > 5

    def test_flat_image_has_no_keypoints(self):
        space = build_scale_space(np.full((64, 64), 0.5))
        assert detect_keypoints(space) == []

    def test_keypoints_inside_image(self, image):
        space = build_scale_space(image)
        for kp in detect_keypoints(space):
            assert 0 <= kp.x < image.shape[1]
            assert 0 <= kp.y < image.shape[0]
            assert kp.sigma > 0

    def test_blob_is_detected_near_its_center(self):
        yy, xx = np.mgrid[0:64, 0:64].astype(float)
        img = np.exp(-((yy - 32) ** 2 + (xx - 32) ** 2) / (2 * 4.0**2))
        space = build_scale_space(img)
        keypoints = detect_keypoints(space, DetectorConfig(contrast_threshold=0.005))
        assert keypoints, "isolated blob must produce a keypoint"
        best = min(keypoints, key=lambda k: (k.x - 32) ** 2 + (k.y - 32) ** 2)
        assert abs(best.x - 32) < 3 and abs(best.y - 32) < 3


class TestDescriptors:
    def test_shape(self, features):
        assert features.ndim == 2
        assert features.shape[1] == 4 + 128

    def test_descriptor_range(self, features):
        desc = features[:, 4:]
        assert desc.min() >= 0 and desc.max() <= 255

    def test_deterministic(self, image, features):
        assert np.array_equal(sift(image), features)

    def test_identical_images_match_strongly(self, features):
        if len(features) >= 2:
            matches = match_descriptors(features, features, ratio=0.9)
            # Self-matching should pair most keypoints with themselves.
            same = sum(1 for i, j in matches if i == j)
            assert same >= len(matches) * 0.8

    def test_different_images_match_weakly(self):
        a = sift(synthetic_image(96, seed=1))
        b = sift(synthetic_image(96, seed=2))
        if len(a) and len(b) >= 2:
            matches = match_descriptors(a, b)
            assert len(matches) <= max(3, 0.5 * len(a))

    def test_empty_match_inputs(self):
        empty = np.zeros((0, 132))
        assert match_descriptors(empty, empty) == []
