"""DEFLATE-style codec: roundtrips, compression, corruption handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.compress import (
    MAX_MATCH,
    MIN_MATCH,
    Token,
    compression_ratio,
    deflate,
    inflate,
    reconstruct,
    tokenize,
)
from repro.errors import SpeedError
from repro.workloads import synthetic_text


class TestLz77:
    @given(st.binary(max_size=2000))
    @settings(max_examples=50, deadline=None)
    def test_reconstruct_inverts_tokenize(self, data):
        assert reconstruct(tokenize(data)) == data

    def test_repetitive_data_produces_matches(self):
        tokens = tokenize(b"abcabcabcabcabcabc")
        assert any(t.is_match for t in tokens)

    def test_match_bounds(self):
        for token in tokenize(b"x" * 10000):
            if token.is_match:
                assert MIN_MATCH <= token.length <= MAX_MATCH
                assert token.distance >= 1

    def test_overlapping_match_semantics(self):
        # RLE-style: distance smaller than length.
        data = b"a" * 300
        assert reconstruct(tokenize(data)) == data

    def test_unique_bytes_all_literals(self):
        tokens = tokenize(bytes(range(200)))
        assert all(not t.is_match for t in tokens)


class TestDeflate:
    @pytest.mark.parametrize("data", [
        b"", b"a", b"ab", b"abc" * 500, bytes(range(256)) * 4,
        b"\x00" * 5000, "unicode snippet ✓".encode("utf-8") * 50,
    ])
    def test_roundtrip_cases(self, data):
        assert inflate(deflate(data)) == data

    @given(st.binary(max_size=4096))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data):
        assert inflate(deflate(data)) == data

    def test_compresses_text(self):
        text = synthetic_text(32 * 1024, seed=1)
        assert compression_ratio(text) < 0.6

    def test_deterministic(self):
        data = synthetic_text(4096, seed=2)
        assert deflate(data) == deflate(data)

    def test_rejects_non_bytes(self):
        with pytest.raises(SpeedError):
            deflate("a string")


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(SpeedError):
            inflate(b"JUNK" + b"\x00" * 20)

    def test_truncated_blob(self):
        blob = deflate(b"hello world, hello world, hello world")
        with pytest.raises(SpeedError):
            inflate(blob[: len(blob) // 2])

    def test_length_header_mismatch(self):
        blob = bytearray(deflate(b"data data data data"))
        blob[11] ^= 0x01  # corrupt the original-length header
        with pytest.raises(SpeedError):
            inflate(bytes(blob))

    def test_too_short(self):
        with pytest.raises(SpeedError):
            inflate(b"SPDZ")


class TestHuffman:
    def test_prefix_free(self):
        from repro.apps.compress import code_lengths_from_frequencies
        from repro.apps.compress.huffman import canonical_codes

        freqs = {i: (i + 1) ** 2 for i in range(40)}
        codes = canonical_codes(code_lengths_from_frequencies(freqs))
        as_strings = [format(c, f"0{l}b") for c, l in codes.values()]
        for a in as_strings:
            for b in as_strings:
                if a != b:
                    assert not b.startswith(a)

    def test_frequent_symbols_get_short_codes(self):
        from repro.apps.compress import code_lengths_from_frequencies

        lengths = code_lengths_from_frequencies({0: 1000, 1: 1})
        assert lengths[0] <= lengths[1]

    def test_single_symbol_alphabet(self):
        from repro.apps.compress import code_lengths_from_frequencies

        assert code_lengths_from_frequencies({7: 100}) == {7: 1}

    def test_kraft_inequality(self):
        from repro.apps.compress import code_lengths_from_frequencies

        lengths = code_lengths_from_frequencies({i: i + 1 for i in range(100)})
        assert sum(2.0 ** -l for l in lengths.values()) <= 1.0 + 1e-9

    def test_encoder_decoder_roundtrip(self):
        from repro.apps.compress import (
            HuffmanDecoder,
            HuffmanEncoder,
            code_lengths_from_frequencies,
        )
        from repro.apps.compress.bitio import BitReader, BitWriter

        lengths = code_lengths_from_frequencies({0: 5, 1: 3, 2: 10, 3: 1})
        enc, dec = HuffmanEncoder(lengths), HuffmanDecoder(lengths)
        writer = BitWriter()
        symbols = [2, 2, 0, 1, 3, 2, 0]
        for s in symbols:
            enc.write_symbol(writer, s)
        reader = BitReader(writer.getvalue())
        assert [dec.read_symbol(reader) for _ in symbols] == symbols


class TestBitIo:
    def test_roundtrip_mixed_widths(self):
        from repro.apps.compress.bitio import BitReader, BitWriter

        w = BitWriter()
        w.write(0b101, 3)
        w.write(0xABCD, 16)
        w.write(1, 1)
        r = BitReader(w.getvalue())
        assert r.read(3) == 0b101
        assert r.read(16) == 0xABCD
        assert r.read(1) == 1

    def test_overflow_rejected(self):
        from repro.apps.compress.bitio import BitWriter

        with pytest.raises(SpeedError):
            BitWriter().write(8, 3)

    def test_truncation_detected(self):
        from repro.apps.compress.bitio import BitReader

        with pytest.raises(SpeedError):
            BitReader(b"").read(1)
