"""CRC-32: pinned to the IEEE/zlib definition via the stdlib."""

import binascii

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.compress import crc32, deflate, inflate
from repro.errors import SpeedError


class TestCrc32:
    def test_known_vector(self):
        assert crc32(b"123456789") == 0xCBF43926

    def test_empty(self):
        assert crc32(b"") == 0

    @given(st.binary(max_size=512))
    @settings(max_examples=60, deadline=None)
    def test_matches_stdlib(self, data):
        assert crc32(data) == binascii.crc32(data)

    @given(st.binary(max_size=128), st.binary(max_size=128))
    @settings(max_examples=30, deadline=None)
    def test_incremental(self, a, b):
        assert crc32(b, crc32(a)) == crc32(a + b)


class TestContainerCrc:
    def test_crc_in_container_detects_corruption(self):
        blob = bytearray(deflate(b"payload " * 100))
        blob[14] ^= 0x01  # flip a bit in the stored CRC
        with pytest.raises(SpeedError, match="CRC-32|length|Huffman|stream"):
            inflate(bytes(blob))
