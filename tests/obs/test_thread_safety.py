"""Concurrency regression tests for the obs layer.

The pipelined execution engine (PR 6) shares one MetricsRegistry and
one Tracer across concurrent callers.  These tests drive the exact
races that used to lose updates: read-modify-write counter increments,
registry instrument creation during snapshot, and ring-buffer appends
from many threads at once.

The ``thread_stress`` marker lets CI run the suite nightly under
``PYTHONDEVMODE=1``; the tests are fast enough to stay in tier-1 too.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

pytestmark = pytest.mark.thread_stress

THREADS = 8
ITERS = 2_000


def _run_threads(target, n=THREADS):
    barrier = threading.Barrier(n)

    def wrapped(index):
        barrier.wait()
        target(index)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def test_concurrent_counter_increments_are_exact():
    registry = MetricsRegistry()
    counter = registry.counter("engine.ops")

    _run_threads(lambda _i: [counter.inc() for _ in range(ITERS)])

    assert counter.value == THREADS * ITERS
    assert registry.snapshot()["engine.ops"] == THREADS * ITERS


def test_concurrent_instrument_creation_yields_one_instrument():
    registry = MetricsRegistry()

    def worker(_index):
        for _ in range(ITERS):
            registry.counter("engine.shared").inc()

    _run_threads(worker)

    assert registry.counter("engine.shared").value == THREADS * ITERS


def test_snapshot_during_increments_never_fails():
    registry = MetricsRegistry()
    stop = threading.Event()
    errors: list[BaseException] = []

    def incrementer(index):
        for i in range(ITERS):
            registry.counter(f"engine.c{index % 4}").inc()
            registry.histogram("engine.latency").observe(float(i))

    def snapshotter():
        while not stop.is_set():
            try:
                registry.snapshot()
            except BaseException as exc:  # pragma: no cover - the regression
                errors.append(exc)
                return

    reader = threading.Thread(target=snapshotter)
    reader.start()
    try:
        _run_threads(incrementer)
    finally:
        stop.set()
        reader.join()

    assert not errors
    snapshot = registry.snapshot()
    assert snapshot["engine.latency.count"] == THREADS * ITERS
    assert sum(snapshot[f"engine.c{i}"] for i in range(4)) == THREADS * ITERS


def test_histogram_concurrent_observe_totals():
    registry = MetricsRegistry()
    histogram = registry.histogram("engine.bytes")

    _run_threads(lambda _i: [histogram.observe(1.0) for _ in range(ITERS)])

    assert histogram.count == THREADS * ITERS
    assert histogram.total == float(THREADS * ITERS)


def test_tracer_concurrent_spans_exact_phase_totals():
    tracer = Tracer(max_spans=512)  # far smaller than the span volume: wraps

    def worker(index):
        for _ in range(ITERS // 4):
            with tracer.span(f"engine.lane{index % 2}"):
                with tracer.span("engine.op"):
                    pass

    _run_threads(worker)

    breakdown = tracer.phase_breakdown()
    assert breakdown["engine.op"]["count"] == THREADS * (ITERS // 4)
    lanes = breakdown["engine.lane0"]["count"] + breakdown["engine.lane1"]["count"]
    assert lanes == THREADS * (ITERS // 4)
    assert breakdown["engine.op"]["errors"] == 0


def test_tracer_stacks_are_per_thread():
    tracer = Tracer()
    parent_ids: dict[int, int | None] = {}
    barrier = threading.Barrier(4)

    def worker(index):
        with tracer.span("root") as root:
            barrier.wait()  # every thread holds a root span open at once
            with tracer.span("child"):
                parent_ids[index] = tracer.current_span_id
            assert tracer.current_span_id == root.span_id

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    spans = tracer.spans()
    children = [s for s in spans if s.name == "child"]
    roots = {s.span_id: s for s in spans if s.name == "root"}
    assert len(children) == 4 and len(roots) == 4
    # Each child's parent is a root of the *same* trace, i.e. its own
    # thread's root — concurrent spans never adopted a foreign parent.
    for child in children:
        assert child.parent_id in roots
        assert roots[child.parent_id].trace_id == child.trace_id
    # Span ids were allocated race-free: all unique.
    ids = [s.span_id for s in spans]
    assert len(ids) == len(set(ids))


def test_tracer_reads_during_concurrent_appends():
    tracer = Tracer(max_spans=256)
    stop = threading.Event()
    errors: list[BaseException] = []

    def reader():
        while not stop.is_set():
            try:
                list(tracer)
                tracer.phase_breakdown()
                tracer.trace_ids()
            except BaseException as exc:  # pragma: no cover - the regression
                errors.append(exc)
                return

    t = threading.Thread(target=reader)
    t.start()
    try:
        _run_threads(lambda i: [tracer.event(f"e{i % 2}") for _ in range(ITERS // 2)])
    finally:
        stop.set()
        t.join()

    assert not errors
    counts = tracer.phase_breakdown()
    assert counts["e0"]["count"] + counts["e1"]["count"] == THREADS * (ITERS // 2)
