"""Unit tests for the span tracer (repro.obs.tracer)."""

import pytest

from repro.obs.tracer import (
    NULL_TRACER,
    Tracer,
    build_tree,
    find_spans,
)


class FakeClock:
    """Minimal SimClock stand-in: cycles advance when told to."""

    class params:
        cpu_freq_hz = 1_000_000  # 1 cycle == 1 us

    def __init__(self):
        self.cycles = 0

    def snapshot(self):
        return self.cycles

    def since(self, snapshot):
        return self.cycles - snapshot

    def advance(self, cycles):
        self.cycles += cycles


def test_nested_spans_link_parent_child():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner"):
            pass
    spans = tracer.spans()
    assert [s.name for s in spans] == ["inner", "outer"]  # finish order
    inner, outer_span = spans
    assert inner.parent_id == outer.span_id
    assert inner.trace_id == outer_span.trace_id
    assert outer_span.parent_id is None


def test_sibling_roots_get_distinct_trace_ids():
    tracer = Tracer()
    with tracer.span("first"):
        pass
    with tracer.span("second"):
        pass
    first, second = tracer.spans()
    assert first.trace_id != second.trace_id
    assert tracer.last_trace_id == second.trace_id
    assert [s.name for s in tracer.last_trace()] == ["second"]


def test_span_records_sim_time_from_clock():
    tracer = Tracer()
    clock = FakeClock()
    with tracer.span("work", clock=clock):
        clock.advance(500)
    (span,) = tracer.spans()
    assert span.sim_seconds == pytest.approx(500 / clock.params.cpu_freq_hz)
    assert span.wall_seconds >= 0.0


def test_span_attrs_and_runtime_set_and_mark():
    tracer = Tracer()
    with tracer.span("op", kind="get", bytes=12) as span:
        span.set("found", True)
        span.mark("degraded")
    (finished,) = tracer.spans()
    assert finished.attrs == {"kind": "get", "bytes": 12, "found": True}
    assert finished.status == "degraded"


def test_exception_marks_span_error_and_propagates():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("no")
    (span,) = tracer.spans()
    assert span.status == "error"
    assert span.attrs["error"] == "ValueError"
    # The stack unwound: a new span is a fresh root.
    with tracer.span("next"):
        pass
    assert tracer.spans()[-1].parent_id is None


def test_event_is_a_zero_duration_child_span():
    tracer = Tracer()
    with tracer.span("parent") as parent:
        event = tracer.event("failover", shard="shard-1")
    assert event.parent_id == parent.span_id
    assert event.attrs == {"shard": "shard-1"}


def test_phase_breakdown_survives_ring_buffer_wrap():
    tracer = Tracer(max_spans=4)
    for _ in range(10):
        with tracer.span("tick"):
            pass
    assert len(tracer) == 4  # buffer wrapped
    breakdown = tracer.phase_breakdown()
    assert breakdown["tick"]["count"] == 10
    assert breakdown["tick"]["errors"] == 0


def test_phase_breakdown_counts_errors():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("op"):
            raise RuntimeError
    with tracer.span("op"):
        pass
    assert tracer.phase_breakdown()["op"] == pytest.approx(
        {"count": 2, "errors": 1,
         "wall_seconds": tracer.phase_breakdown()["op"]["wall_seconds"],
         "sim_seconds": 0.0}
    )


def test_slow_log_catches_spans_over_sim_threshold():
    tracer = Tracer(slow_sim_threshold_s=0.001)
    clock = FakeClock()
    with tracer.span("fast", clock=clock):
        clock.advance(10)
    with tracer.span("slow", clock=clock):
        clock.advance(5_000)
    assert [entry.name for entry in tracer.slow_log] == ["slow"]
    assert tracer.slow_log[0].sim_seconds == pytest.approx(0.005)


def test_tree_and_find():
    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("a"):
            with tracer.span("leaf"):
                pass
        with tracer.span("b"):
            pass
    roots = tracer.tree()
    assert len(roots) == 1
    assert roots[0].span.name == "root"
    assert [c.span.name for c in roots[0].children] == ["a", "b"]
    assert [n.span.name for n in roots[0].find("leaf")] == ["leaf"]
    assert find_spans(tracer.spans(), "b")[0].name == "b"


def test_build_tree_orphan_spans_become_roots():
    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("mid"):
            with tracer.span("leaf"):
                pass
    # Render from a partial list (as after buffer wrap): spans whose
    # parent is missing root the rendered tree instead of vanishing.
    partial = [s for s in tracer.spans() if s.name != "root"]
    roots = build_tree(partial)
    assert [r.span.name for r in roots] == ["mid"]
    assert [c.span.name for c in roots[0].children] == ["leaf"]


def test_reset_clears_spans_totals_and_slow_log():
    tracer = Tracer(slow_wall_threshold_s=0.0)
    with tracer.span("x"):
        pass
    tracer.reset()
    assert len(tracer) == 0
    assert tracer.phase_breakdown() == {}
    assert not tracer.slow_log


def test_fresh_tracer_is_falsy_so_identity_checks_are_required():
    # A Tracer defines __len__, so a fresh one is falsy — components must
    # use "NULL_TRACER if tracer is None else tracer", never "tracer or".
    tracer = Tracer()
    assert not tracer
    assert tracer.enabled


def test_null_tracer_is_inert():
    assert not NULL_TRACER.enabled
    with NULL_TRACER.span("anything", clock=None, foo=1) as span:
        span.set("k", "v")
        span.mark("error")
    assert span.span_id is None
    assert NULL_TRACER.current_span_id is None
    assert NULL_TRACER.current_trace_id is None
    assert NULL_TRACER.event("x") is None
