"""Unit tests for span/metric exporters (repro.obs.exporters)."""

import json

from repro.obs.exporters import (
    diff_breakdown,
    format_metrics,
    format_phase_breakdown,
    format_trace,
    phase_breakdown,
    spans_to_jsonl,
    write_spans_jsonl,
)
from repro.obs.tracer import Tracer


def _sample_spans():
    tracer = Tracer()
    with tracer.span("root", kind="demo"):
        with tracer.span("child"):
            pass
        with tracer.span("child"):
            pass
    return tracer.spans()


def test_spans_to_jsonl_one_object_per_span():
    spans = _sample_spans()
    lines = spans_to_jsonl(spans).strip().split("\n")
    assert len(lines) == 3
    decoded = [json.loads(line) for line in lines]
    assert {d["name"] for d in decoded} == {"root", "child"}
    root = next(d for d in decoded if d["name"] == "root")
    assert root["parent_id"] is None
    assert root["attrs"] == {"kind": "demo"}


def test_write_spans_jsonl(tmp_path):
    path = write_spans_jsonl(_sample_spans(), tmp_path / "out" / "trace.jsonl")
    assert path.exists()
    assert len(path.read_text().strip().split("\n")) == 3


def test_phase_breakdown_aggregates_per_name():
    breakdown = phase_breakdown(_sample_spans())
    assert breakdown["child"]["count"] == 2
    assert breakdown["root"]["count"] == 1
    assert breakdown["root"]["errors"] == 0


def test_diff_breakdown_reports_only_changed_phases():
    before = {"get": {"count": 2, "wall_seconds": 1.0, "sim_seconds": 0.5, "errors": 0}}
    after = {
        "get": {"count": 5, "wall_seconds": 2.5, "sim_seconds": 1.25, "errors": 1},
        "put": {"count": 1, "wall_seconds": 0.1, "sim_seconds": 0.05, "errors": 0},
        "idle": {"count": 0, "wall_seconds": 0.0, "sim_seconds": 0.0, "errors": 0},
    }
    delta = diff_breakdown(before, after)
    assert delta["get"] == {"count": 3, "wall_seconds": 1.5,
                            "sim_seconds": 0.75, "errors": 1}
    assert delta["put"]["count"] == 1  # new phase counts from zero
    assert "idle" not in delta         # zero-count phases are dropped


def test_format_trace_indents_children():
    text = format_trace(_sample_spans(), title="demo trace")
    lines = text.split("\n")
    assert lines[0] == "demo trace"
    root_line = next(line for line in lines if line.startswith("root"))
    child_lines = [line for line in lines if line.lstrip().startswith("child")]
    assert "kind=demo" in root_line
    assert len(child_lines) == 2
    assert all(line.startswith("  child") for line in child_lines)


def test_format_phase_breakdown_and_metrics_render():
    text = format_phase_breakdown(phase_breakdown(_sample_spans()))
    assert "phase" in text and "child" in text and "root" in text
    table = format_metrics({"runtime.calls": 2, "store.hit_rate": 0.5})
    assert "runtime.calls" in table and "0.5" in table
