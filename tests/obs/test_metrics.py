"""Unit tests for the unified metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    namespaced,
    strip_aliases,
)


def test_counter_and_gauge():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    gauge = Gauge()
    gauge.set(2.5)
    gauge.set(1.0)
    assert gauge.value == 1.0


def test_histogram_summary_and_quantiles():
    histogram = Histogram()
    for value in range(1, 101):
        histogram.observe(float(value))
    summary = histogram.summary()
    assert summary["count"] == 100
    assert summary["min"] == 1.0
    assert summary["max"] == 100.0
    assert summary["mean"] == pytest.approx(50.5)
    assert 40.0 <= summary["p50"] <= 60.0
    assert summary["p95"] >= 90.0


def test_histogram_reservoir_is_bounded_and_deterministic():
    a, b = Histogram(max_samples=16), Histogram(max_samples=16)
    for value in range(1000):
        a.observe(float(value))
        b.observe(float(value))
    assert len(a._samples) == 16
    assert a._samples == b._samples  # no randomness
    assert a.summary() == b.summary()


def test_empty_histogram_summary_is_all_zero():
    assert Histogram().summary()["count"] == 0
    assert Histogram().quantile(0.5) == 0.0


def test_namespaced_emits_canonical_and_alias_keys():
    out = namespaced("store", {"gets": 3, "puts_duplicate": 1},
                     renames={"puts_duplicate": "puts_duplicated"})
    assert out["gets"] == 3                      # legacy alias
    assert out["store.gets"] == 3                # canonical
    assert out["store.puts_duplicated"] == 1     # canonical, renamed
    assert out["puts_duplicate"] == 1            # alias keeps old spelling


def test_strip_aliases_keeps_only_dotted_keys():
    out = strip_aliases({"gets": 3, "store.gets": 3, "store.hit_rate": 0.5})
    assert out == {"store.gets": 3, "store.hit_rate": 0.5}


def test_registry_instruments_appear_in_snapshot():
    registry = MetricsRegistry()
    registry.counter("app.requests").inc(7)
    registry.gauge("app.queue_depth").set(3)
    registry.histogram("app.latency").observe(0.5)
    snap = registry.snapshot()
    assert snap["app.requests"] == 7
    assert snap["app.queue_depth"] == 3
    assert snap["app.latency.count"] == 1
    assert snap["app.latency.mean"] == 0.5


def test_registry_sources_namespace_undotted_keys():
    registry = MetricsRegistry()
    registry.register_source("runtime", lambda: {"calls": 2, "runtime.hits": 1})
    snap = registry.snapshot()
    assert snap["runtime.hits"] == 1       # dotted keys pass through
    assert snap["runtime.calls"] == 2      # un-dotted get the prefix
    assert "calls" not in snap             # aliases never leak


def test_registry_source_alias_never_shadows_canonical_twin():
    # A legacy snapshot carries both "gets" (alias) and "store.gets"
    # (canonical, possibly renamed) — the alias must not overwrite it.
    registry = MetricsRegistry()
    registry.register_source("store", lambda: {"gets": 99, "store.gets": 1})
    assert registry.snapshot()["store.gets"] == 1


def test_registry_sources_are_live_and_unregisterable():
    registry = MetricsRegistry()
    state = {"n": 0}
    registry.register_source("c", lambda: {"n": state["n"]})
    assert registry.snapshot()["c.n"] == 0
    state["n"] = 5
    assert registry.snapshot()["c.n"] == 5
    registry.unregister_source("c")
    assert registry.snapshot() == {}


def test_to_json_round_trips():
    registry = MetricsRegistry()
    registry.counter("x.y").inc()
    assert json.loads(registry.to_json()) == {"x.y": 1}
