"""AdaptiveDepthController state-machine tests (unit + property).

The controller is a pure state machine: no randomness, no clock.  The
property tests drive it with seeded random observation streams through
the miniature runner in :mod:`tests.proptest` and pin the invariants the
simulation harness relies on: the published depth never leaves
``[min_depth, max_depth]``, shrink signals take precedence over grow
evidence, and identical streams replay identical decision logs.
"""

import pytest

from repro.engine import AdaptiveDepthController, DepthObservation
from repro.errors import ProtocolError

from tests.proptest import Gen, for_all, integers, lists_of


# -- observation stream generator --------------------------------------------
def observations(max_len: int = 24) -> Gen:
    """Random ``DepthObservation`` field tuples; shrinks towards the
    benign good-round observation."""

    def sample(rng):
        return (
            rng.randint(0, 40),                   # ops
            float(rng.randint(0, 50_000)),        # makespan_cycles
            rng.randint(0, 2),                    # failures
            rng.random() < 0.2,                   # backpressure
            rng.random() < 0.3,                   # migration_active
            rng.random() < 0.8,                   # full
        )

    def shrinker(value):
        benign = (8, 800.0, 0, False, False, True)
        if value != benign:
            yield benign

    return lists_of(Gen(sample, shrinker), max_len=max_len)


def build(fields) -> DepthObservation:
    ops, makespan, failures, backpressure, migration, full = fields
    return DepthObservation(
        ops=ops, makespan_cycles=makespan, failures=failures,
        backpressure=backpressure, migration_active=migration, full=full,
    )


def good(per_op: float = 100.0, ops: int = 8) -> DepthObservation:
    return DepthObservation(ops=ops, makespan_cycles=per_op * ops)


# -- properties ----------------------------------------------------------------
@for_all(observations(), integers(1, 4), integers(4, 32), runs=200)
def test_depth_always_clamped(stream, min_depth, max_depth):
    """Whatever the stream does, the published depth stays in
    ``[min_depth, max_depth]`` — and under ``migration_cap`` while the
    observation reports an open migration window."""
    controller = AdaptiveDepthController(min_depth=min_depth, max_depth=max_depth)
    for fields in stream:
        obs = build(fields)
        depth = controller.observe(obs)
        assert min_depth <= depth <= max_depth
        if obs.migration_active:
            assert depth <= controller.migration_cap
        assert controller.round_depth(True) <= controller.migration_cap


@for_all(observations(), runs=200)
def test_shrink_signal_has_precedence(stream):
    """A round with failures or back-pressure never raises the depth,
    even when its per-op latency alone would count as grow evidence.
    (Migration-free streams: the cap lifting can legitimately re-raise
    the published depth and is covered by its own unit test.)"""
    controller = AdaptiveDepthController(min_depth=1, max_depth=32)
    for fields in stream:
        obs = build(fields[:4] + (False, fields[5]))
        before = controller.depth
        after = controller.observe(obs)
        if obs.failures > 0 or obs.backpressure:
            assert after <= max(controller.min_depth, before)
            assert controller.log[-1][2] in ("failures", "backpressure")


@for_all(observations(), runs=100)
def test_identical_streams_replay_identically(stream):
    """The controller is a pure function of its observation stream."""
    a = AdaptiveDepthController(min_depth=1, max_depth=32)
    b = AdaptiveDepthController(min_depth=1, max_depth=32)
    for fields in stream:
        a.observe(build(fields))
        b.observe(build(fields))
    assert a.log == b.log
    assert a.log_digest() == b.log_digest()
    assert (a.depth, a.changes, a.grows, a.shrinks, a.migration_capped) == \
        (b.depth, b.changes, b.grows, b.shrinks, b.migration_capped)


@for_all(observations(max_len=12), integers(2, 32), runs=100)
def test_recovery_round_trips_to_max(stream, max_depth):
    """AIMD recovery: after any prefix of chaos, a long run of
    consistently good full rounds climbs back to ``max_depth``."""
    controller = AdaptiveDepthController(min_depth=1, max_depth=max_depth)
    for fields in stream:
        controller.observe(build(fields))
    # Doubling to ssthresh then +1 per round: 3x max rounds is plenty.
    for _ in range(3 * max_depth):
        controller.observe(good())
    assert controller.depth == max_depth


# -- unit tests ----------------------------------------------------------------
class TestSlowStart:
    def test_doubles_below_ssthresh_then_holds_at_max(self):
        controller = AdaptiveDepthController(min_depth=1, max_depth=16)
        seen = [controller.observe(good()) for _ in range(6)]
        assert seen == [2, 4, 8, 16, 16, 16]

    def test_additive_above_ssthresh(self):
        controller = AdaptiveDepthController(min_depth=1, max_depth=32)
        for _ in range(4):
            controller.observe(good())          # depth 16
        controller.observe(DepthObservation(ops=8, makespan_cycles=800, failures=1))
        assert controller.depth == 8            # halved; ssthresh = 8
        # At ssthresh the slow-start doubling is over: +1 per good round.
        assert controller.observe(good()) == 9
        assert controller.observe(good()) == 10


class TestShrinkSignals:
    def test_failures_halve_and_reset_floor(self):
        controller = AdaptiveDepthController(min_depth=1, max_depth=32)
        for _ in range(5):
            controller.observe(good(per_op=100.0))
        controller.observe(DepthObservation(ops=8, makespan_cycles=800, failures=2))
        assert controller.log[-1][2] == "failures"
        # The floor was reset: a much slower (but now steady) per-op
        # rate counts as grow evidence again instead of "slow-round".
        assert controller.observe(good(per_op=900.0)) > controller.min_depth
        assert controller.log[-1][2] == "grow"

    def test_backpressure_shrinks(self):
        controller = AdaptiveDepthController(min_depth=1, max_depth=32)
        for _ in range(4):
            controller.observe(good())
        before = controller.depth
        after = controller.observe(
            DepthObservation(ops=8, makespan_cycles=800, backpressure=True)
        )
        assert after == max(1, before // 2)
        assert controller.shrinks == 1

    def test_slow_round_shrinks(self):
        controller = AdaptiveDepthController(min_depth=1, max_depth=32)
        for _ in range(4):
            controller.observe(good(per_op=100.0))  # depth 16, floor 100
        after = controller.observe(good(per_op=200.0))  # > 1.25x floor
        assert after == 8
        assert controller.log[-1][2] == "slow-round"

    def test_partial_round_holds(self):
        controller = AdaptiveDepthController(min_depth=1, max_depth=32)
        for _ in range(3):
            controller.observe(good())  # depth 8
        # A 1-op tail round cannot amortize fixed costs: per-op looks
        # terrible, but partial rounds are not depth evidence.
        after = controller.observe(DepthObservation(
            ops=1, makespan_cycles=5000.0, full=False,
        ))
        assert after == 8
        assert controller.log[-1][2] == "partial"


class TestMigrationCap:
    def test_cap_publishes_yielded_slots(self):
        controller = AdaptiveDepthController(min_depth=1, max_depth=32)
        for _ in range(5):
            controller.observe(good())  # raw depth 32
        depth = controller.observe(DepthObservation(
            ops=8, makespan_cycles=800.0, migration_active=True,
        ))
        assert depth == controller.migration_cap == 8
        assert controller.yielded_slots == 32 - 8
        assert controller.migration_capped == 1
        assert controller.log[-1][2].endswith("+migration-cap")

    def test_cap_lifts_when_window_closes(self):
        controller = AdaptiveDepthController(min_depth=1, max_depth=32)
        for _ in range(5):
            controller.observe(good())
        controller.observe(DepthObservation(
            ops=8, makespan_cycles=800.0, migration_active=True,
        ))
        assert controller.depth == 8
        depth = controller.observe(good())  # window closed
        assert depth > 8
        assert controller.yielded_slots == 0

    def test_round_depth_caps_statelessly(self):
        controller = AdaptiveDepthController(min_depth=1, max_depth=32)
        for _ in range(5):
            controller.observe(good())
        assert controller.round_depth(False) == 32
        assert controller.round_depth(True) == controller.migration_cap


class TestValidation:
    def test_min_depth_positive(self):
        with pytest.raises(ProtocolError):
            AdaptiveDepthController(min_depth=0)

    def test_max_at_least_min(self):
        with pytest.raises(ProtocolError):
            AdaptiveDepthController(min_depth=8, max_depth=4)

    def test_migration_cap_in_range(self):
        with pytest.raises(ProtocolError):
            AdaptiveDepthController(min_depth=4, max_depth=16, migration_cap=2)


class TestLogDigest:
    def test_digest_pins_reasons_not_just_depths(self):
        a = AdaptiveDepthController(min_depth=1, max_depth=4)
        b = AdaptiveDepthController(min_depth=1, max_depth=4)
        a.observe(DepthObservation(ops=1, makespan_cycles=100.0, full=False))
        b.observe(DepthObservation(ops=1, makespan_cycles=100.0, failures=1))
        assert a.depth == b.depth == 1  # same depth, different reason
        assert a.log_digest() != b.log_digest()
