"""Property-based round trips for the crypto layer (tests/proptest.py):
decrypt∘encrypt = identity, and any one-bit tamper is rejected."""

import dataclasses

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.gcm import IV_SIZE, open_, seal
from repro.crypto.mle import ConvergentEncryption, RandomizedConvergentEncryption
from repro.errors import IntegrityError

from ..proptest import byte_strings, for_all, integers


def flip_bit(data: bytes, bit_index: int) -> bytes:
    index, bit = divmod(bit_index % (len(data) * 8), 8)
    return data[:index] + bytes([data[index] ^ (1 << bit)]) + data[index + 1:]


KEY = byte_strings(min_len=16, max_len=16)
IV = byte_strings(min_len=IV_SIZE, max_len=IV_SIZE)
MESSAGE = byte_strings(max_len=48)
AAD = byte_strings(max_len=16)


class TestGcm:
    @staticmethod
    @for_all(KEY, IV, MESSAGE, AAD, runs=15)
    def test_open_seal_roundtrip(key, iv, message, aad):
        assert open_(key, seal(key, iv, message, aad), aad) == message

    @staticmethod
    @for_all(KEY, IV, MESSAGE, integers(0, 10_000), runs=15)
    def test_one_bit_tamper_rejected(key, iv, message, bit):
        sealed = seal(key, iv, message)
        with pytest.raises(IntegrityError):
            open_(key, flip_bit(sealed, bit))

    @staticmethod
    @for_all(KEY, IV, MESSAGE, AAD, runs=10)
    def test_aad_is_authenticated(key, iv, message, aad):
        sealed = seal(key, iv, message, aad)
        with pytest.raises(IntegrityError):
            open_(key, sealed, aad + b"x")


class TestConvergentEncryption:
    @staticmethod
    @for_all(MESSAGE, runs=20)
    def test_decrypt_encrypt_identity(message):
        ce = ConvergentEncryption()
        assert ce.decrypt(ce.encrypt(message), message) == message

    @staticmethod
    @for_all(MESSAGE, runs=20)
    def test_deterministic_tag_and_ciphertext(message):
        ce = ConvergentEncryption()
        a, b = ce.encrypt(message), ce.encrypt(message)
        assert a.tag == b.tag
        assert a.sealed == b.sealed

    @staticmethod
    @for_all(byte_strings(min_len=1, max_len=48), integers(0, 10_000), runs=15)
    def test_tampered_ciphertext_rejected(message, bit):
        ce = ConvergentEncryption()
        ct = ce.encrypt(message)
        tampered = dataclasses.replace(ct, sealed=flip_bit(ct.sealed, bit))
        with pytest.raises(IntegrityError):
            ce.decrypt(tampered, message)


class TestRandomizedConvergentEncryption:
    @staticmethod
    @for_all(MESSAGE, runs=15)
    def test_decrypt_encrypt_identity(message):
        rce = RandomizedConvergentEncryption(HmacDrbg(b"prop", b"rce"))
        assert rce.decrypt(rce.encrypt(message), message) == message

    @staticmethod
    @for_all(MESSAGE, runs=10)
    def test_randomized_ciphertexts_share_the_tag(message):
        rce = RandomizedConvergentEncryption(HmacDrbg(b"prop", b"rce"))
        a, b = rce.encrypt(message), rce.encrypt(message)
        assert a.tag == b.tag          # server can still deduplicate
        assert a.sealed != b.sealed    # but ciphertexts are randomized

    @staticmethod
    @for_all(byte_strings(min_len=1, max_len=48), integers(0, 10_000), runs=10)
    def test_tampered_sealed_rejected(message, bit):
        rce = RandomizedConvergentEncryption(HmacDrbg(b"prop", b"rce"))
        ct = rce.encrypt(message)
        tampered = dataclasses.replace(ct, sealed=flip_bit(ct.sealed, bit))
        with pytest.raises(IntegrityError):
            rce.decrypt(tampered, message)

    @staticmethod
    @for_all(byte_strings(min_len=1, max_len=48), runs=10)
    def test_wrong_message_cannot_unwrap(message):
        rce = RandomizedConvergentEncryption(HmacDrbg(b"prop", b"rce"))
        ct = rce.encrypt(message)
        with pytest.raises(IntegrityError):
            rce.decrypt(ct, message + b"\x00")
