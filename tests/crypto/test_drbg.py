"""HMAC-DRBG: determinism, independence, bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.errors import CryptoError


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = HmacDrbg(b"seed").generate(64)
        b = HmacDrbg(b"seed").generate(64)
        assert a == b

    def test_different_seeds_differ(self):
        assert HmacDrbg(b"seed-a").generate(32) != HmacDrbg(b"seed-b").generate(32)

    def test_personalization_differs(self):
        assert (
            HmacDrbg(b"s", b"app-1").generate(32) != HmacDrbg(b"s", b"app-2").generate(32)
        )

    def test_stream_position_matters(self):
        d = HmacDrbg(b"seed")
        assert d.generate(32) != d.generate(32)

    def test_split_requests_match_stream_prefix(self):
        # Each generate() call re-keys, so two 16-byte requests differ from
        # one 32-byte request — but both must be reproducible.
        d1, d2 = HmacDrbg(b"s"), HmacDrbg(b"s")
        assert d1.generate(16) + d1.generate(16) == d2.generate(16) + d2.generate(16)


class TestForking:
    def test_fork_is_deterministic(self):
        a = HmacDrbg(b"seed").fork(b"child").generate(32)
        b = HmacDrbg(b"seed").fork(b"child").generate(32)
        assert a == b

    def test_fork_labels_independent(self):
        parent = HmacDrbg(b"seed")
        c1 = parent.fork(b"one")
        c2 = parent.fork(b"two")
        assert c1.generate(32) != c2.generate(32)


class TestBounds:
    def test_rejects_empty_seed(self):
        with pytest.raises(CryptoError):
            HmacDrbg(b"")

    def test_rejects_negative(self):
        with pytest.raises(CryptoError):
            HmacDrbg(b"s").generate(-1)

    def test_rejects_oversized_request(self):
        with pytest.raises(CryptoError):
            HmacDrbg(b"s").generate(HmacDrbg.MAX_REQUEST + 1)

    def test_zero_bytes(self):
        assert HmacDrbg(b"s").generate(0) == b""

    @given(st.integers(min_value=1, max_value=10**12))
    @settings(max_examples=50, deadline=None)
    def test_randint_below_in_range(self, bound):
        assert 0 <= HmacDrbg(b"s").randint_below(bound) < bound

    def test_randint_rejects_nonpositive(self):
        with pytest.raises(CryptoError):
            HmacDrbg(b"s").randint_below(0)

    def test_reseed_changes_stream(self):
        d1, d2 = HmacDrbg(b"s"), HmacDrbg(b"s")
        d2.reseed(b"fresh entropy")
        assert d1.generate(32) != d2.generate(32)
