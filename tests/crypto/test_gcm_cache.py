"""Micro-bench and regression tests for GCM setup caching.

BENCH_batch.json attributed ~2.0 s of a 2.17 s wall-clock PUT run to
``channel.encrypt`` + ``channel.decrypt``; nearly all of it was GCM
*setup* (AES key schedule + 16x256 GHASH table) being rebuilt for every
record even though the channel keys never change.  These tests pin the
fix: setup cost is paid once per key, not once per record, and the
cached path is measurably faster than fresh per-record construction.
"""

from __future__ import annotations

import time

from repro.crypto import gcm
from repro.crypto.gcm import AesGcm, open_, seal


def _iv(i: int) -> bytes:
    return i.to_bytes(12, "big")


def test_instance_builds_ghash_table_once_across_records():
    cipher = AesGcm(b"\x11" * 16)
    before = gcm.table_builds
    for i in range(50):
        ct, tag = cipher.encrypt(_iv(i), b"payload-%d" % i)
        assert cipher.decrypt(_iv(i), ct, tag) == b"payload-%d" % i
    assert gcm.table_builds - before == 1


def test_seal_open_reuse_one_cipher_per_key():
    key = b"\x22" * 16
    gcm._CIPHER_CACHE.pop(key, None)
    before = gcm.table_builds
    blobs = [seal(key, _iv(i), b"record-%d" % i) for i in range(40)]
    for i, blob in enumerate(blobs):
        assert open_(key, blob) == b"record-%d" % i
    # One table build for the whole 80-record run, not 80.
    assert gcm.table_builds - before == 1


def test_cipher_cache_is_bounded():
    gcm._CIPHER_CACHE.clear()
    for i in range(gcm._CIPHER_CACHE_MAX + 40):
        seal(i.to_bytes(16, "big"), _iv(i), b"x")
    assert len(gcm._CIPHER_CACHE) <= gcm._CIPHER_CACHE_MAX


def test_cached_seal_matches_fresh_cipher_and_rejects_tampering():
    key = b"\x33" * 16
    blob = seal(key, _iv(7), b"value", aad=b"meta")
    ct, tag = AesGcm(key).encrypt(_iv(7), b"value", aad=b"meta")
    assert blob == _iv(7) + tag + ct
    tampered = blob[:-1] + bytes([blob[-1] ^ 1])
    try:
        open_(key, tampered, aad=b"meta")
    except Exception as exc:
        assert type(exc).__name__ == "IntegrityError"
    else:  # pragma: no cover
        raise AssertionError("tampered blob verified")


def test_microbench_cached_setup_beats_per_record_setup():
    """Wall-clock micro-bench: N sealed records through the cached path
    must beat N records each paying full setup.  The margin is lenient
    (1.5x) so CI noise cannot flip it; the real ratio is far larger."""
    key = b"\x44" * 16
    payload = b"p" * 256
    n = 60

    seal(key, _iv(0), payload)  # warm the keyed cache

    t0 = time.perf_counter()
    for i in range(n):
        seal(key, _iv(i), payload)
    cached = time.perf_counter() - t0

    t0 = time.perf_counter()
    for i in range(n):
        cipher = AesGcm(key)
        cipher.encrypt(_iv(i), payload)
    fresh = time.perf_counter() - t0

    assert fresh > cached * 1.5, (
        f"expected cached GCM setup to win: fresh={fresh:.4f}s cached={cached:.4f}s"
    )
