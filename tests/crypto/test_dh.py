"""Finite-field DH: agreement, validation, transcript binding."""

import pytest

from repro.crypto.dh import (
    MODP_2048_P,
    derive_session_keys,
    generate_keypair,
    shared_secret,
)
from repro.crypto.drbg import HmacDrbg
from repro.errors import CryptoError


class TestAgreement:
    def test_both_sides_agree(self):
        a = generate_keypair(HmacDrbg(b"alice"))
        b = generate_keypair(HmacDrbg(b"bob"))
        assert shared_secret(a, b.public) == shared_secret(b, a.public)

    def test_different_peers_different_secrets(self):
        a = generate_keypair(HmacDrbg(b"alice"))
        b = generate_keypair(HmacDrbg(b"bob"))
        c = generate_keypair(HmacDrbg(b"carol"))
        assert shared_secret(a, b.public) != shared_secret(a, c.public)

    def test_session_keys_symmetric(self):
        a = generate_keypair(HmacDrbg(b"alice"))
        b = generate_keypair(HmacDrbg(b"bob"))
        transcript = b"handshake-transcript"
        ka = derive_session_keys(a, b.public, transcript)
        kb = derive_session_keys(b, a.public, transcript)
        assert ka == kb
        assert len(ka[0]) == len(ka[1]) == 16
        assert ka[0] != ka[1]

    def test_transcript_binding(self):
        a = generate_keypair(HmacDrbg(b"alice"))
        b = generate_keypair(HmacDrbg(b"bob"))
        assert derive_session_keys(a, b.public, b"t1") != derive_session_keys(
            a, b.public, b"t2"
        )


class TestValidation:
    @pytest.mark.parametrize("bad", [0, 1, MODP_2048_P - 1, MODP_2048_P, MODP_2048_P + 5])
    def test_rejects_degenerate_public_values(self, bad):
        own = generate_keypair(HmacDrbg(b"x"))
        with pytest.raises(CryptoError):
            shared_secret(own, bad)

    def test_public_in_range(self):
        kp = generate_keypair(HmacDrbg(b"y"))
        assert 2 <= kp.public <= MODP_2048_P - 2
