"""AES-128 block cipher: FIPS-197 vectors and structural properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128, SBOX, INV_SBOX
from repro.errors import CryptoError

FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


class TestVectors:
    def test_fips197_encrypt(self):
        assert AES128(FIPS_KEY).encrypt_block(FIPS_PT) == FIPS_CT

    def test_fips197_decrypt(self):
        assert AES128(FIPS_KEY).decrypt_block(FIPS_CT) == FIPS_PT

    def test_sp800_38a_vector(self):
        # NIST SP 800-38A F.1.1 ECB-AES128 block #1.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        assert AES128(key).encrypt_block(pt).hex() == "3ad77bb40d7a3660a89ecaf32466ef97"

    def test_derived_sbox_is_the_aes_sbox(self):
        # Spot-check derived tables against published values.
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16
        assert INV_SBOX[0x63] == 0x00

    def test_sbox_is_permutation(self):
        assert sorted(SBOX.tolist()) == list(range(256))
        assert all(INV_SBOX[SBOX[i]] == i for i in range(256))


class TestRoundtrip:
    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_decrypt_inverts_encrypt(self, key, block):
        cipher = AES128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_vectorised_matches_scalar(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(0, 256, (64, 16)).astype(np.uint8)
        cipher = AES128(b"0123456789abcdef")
        batch = cipher.encrypt_blocks(blocks)
        for i in range(len(blocks)):
            assert batch[i].tobytes() == cipher.encrypt_block(blocks[i].tobytes())

    def test_vectorised_decrypt_matches(self):
        rng = np.random.default_rng(1)
        blocks = rng.integers(0, 256, (32, 16)).astype(np.uint8)
        cipher = AES128(b"fedcba9876543210")
        assert np.array_equal(cipher.decrypt_blocks(cipher.encrypt_blocks(blocks)), blocks)

    def test_different_keys_differ(self):
        a = AES128(b"a" * 16).encrypt_block(FIPS_PT)
        b = AES128(b"b" * 16).encrypt_block(FIPS_PT)
        assert a != b


class TestValidation:
    @pytest.mark.parametrize("key_len", [0, 15, 17, 24, 32])
    def test_rejects_bad_key_sizes(self, key_len):
        with pytest.raises(CryptoError):
            AES128(b"k" * key_len)

    @pytest.mark.parametrize("block_len", [0, 15, 17, 32])
    def test_rejects_bad_block_sizes(self, block_len):
        with pytest.raises(CryptoError):
            AES128(b"k" * 16).encrypt_block(b"x" * block_len)

    def test_rejects_bad_array_shape(self):
        with pytest.raises(CryptoError):
            AES128(b"k" * 16).encrypt_blocks(np.zeros((4, 8), dtype=np.uint8))
