"""AES-GCM: NIST vectors, GF(2^128) algebra, tamper detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.gcm import AesGcm, gf_mult, open_, seal, _build_ghash_table
from repro.errors import CryptoError, IntegrityError


class TestNistVectors:
    def test_case1_empty(self):
        _, tag = AesGcm(b"\x00" * 16).encrypt(b"\x00" * 12, b"")
        assert tag.hex() == "58e2fccefa7e3061367f1d57a4e7455a"

    def test_case2_one_block(self):
        ct, tag = AesGcm(b"\x00" * 16).encrypt(b"\x00" * 12, b"\x00" * 16)
        assert ct.hex() == "0388dace60b6a392f328c2b971b2fe78"
        assert tag.hex() == "ab6e47d42cec13bdf53a67b21257bddf"

    def test_case4_with_aad(self):
        key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
        iv = bytes.fromhex("cafebabefacedbaddecaf888")
        pt = bytes.fromhex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
            "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"
        )
        aad = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
        ct, tag = AesGcm(key).encrypt(iv, pt, aad)
        assert tag.hex() == "5bc94fbc3221a5db94fae95ae7121a47"
        assert AesGcm(key).decrypt(iv, ct, tag, aad) == pt

    def test_long_iv_path(self):
        # Non-12-byte IVs go through the GHASH J0 derivation.
        g = AesGcm(b"\x01" * 16)
        ct, tag = g.encrypt(b"\x02" * 20, b"payload")
        assert g.decrypt(b"\x02" * 20, ct, tag) == b"payload"


class TestGhashAlgebra:
    H = int.from_bytes(bytes.fromhex("66e94bd4ef8a2c3b884cfa59ca342b2e"), "big")

    def test_identity_element(self):
        one = 1 << 127
        assert gf_mult(self.H, one) == self.H

    def test_commutative(self):
        a, b = 0x1234567890ABCDEF << 64, 0xFEDCBA0987654321
        assert gf_mult(a, b) == gf_mult(b, a)

    def test_distributive(self):
        a, b, c = (0x1111 << 100), (0x2222 << 50), 0x3333
        assert gf_mult(a ^ b, c) == gf_mult(a, c) ^ gf_mult(b, c)

    def test_table_agrees_with_bitwise_mult(self):
        table = _build_ghash_table(self.H)
        for x in (1, 0xDEADBEEF, (1 << 127) | 0xABCD, (0x77 << 120) | (0x55 << 8)):
            via_table = 0
            for i in range(16):
                via_table ^= table[i][(x >> (8 * (15 - i))) & 0xFF]
            assert via_table == gf_mult(x, self.H)


class TestTamperDetection:
    KEY = b"k" * 16
    IV = b"i" * 12

    def _encrypt(self, pt=b"secret result bytes", aad=b"tag-binding"):
        return AesGcm(self.KEY).encrypt(self.IV, pt, aad)

    def test_ciphertext_flip_detected(self):
        ct, tag = self._encrypt()
        bad = ct[:-1] + bytes([ct[-1] ^ 1])
        with pytest.raises(IntegrityError):
            AesGcm(self.KEY).decrypt(self.IV, bad, tag, b"tag-binding")

    def test_tag_flip_detected(self):
        ct, tag = self._encrypt()
        bad = tag[:-1] + bytes([tag[-1] ^ 1])
        with pytest.raises(IntegrityError):
            AesGcm(self.KEY).decrypt(self.IV, ct, bad, b"tag-binding")

    def test_wrong_aad_detected(self):
        ct, tag = self._encrypt()
        with pytest.raises(IntegrityError):
            AesGcm(self.KEY).decrypt(self.IV, ct, tag, b"other-binding")

    def test_wrong_iv_detected(self):
        ct, tag = self._encrypt()
        with pytest.raises(IntegrityError):
            AesGcm(self.KEY).decrypt(b"j" * 12, ct, tag, b"tag-binding")

    def test_wrong_key_detected(self):
        ct, tag = self._encrypt()
        with pytest.raises(IntegrityError):
            AesGcm(b"x" * 16).decrypt(self.IV, ct, tag, b"tag-binding")

    def test_truncated_tag_rejected(self):
        ct, tag = self._encrypt()
        with pytest.raises(IntegrityError):
            AesGcm(self.KEY).decrypt(self.IV, ct, tag[:12], b"tag-binding")

    def test_empty_iv_rejected(self):
        with pytest.raises(CryptoError):
            AesGcm(self.KEY).encrypt(b"", b"data")


class TestSealOpen:
    @given(st.binary(max_size=2048), st.binary(max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, plaintext, aad):
        blob = seal(b"k" * 16, b"i" * 12, plaintext, aad)
        assert open_(b"k" * 16, blob, aad) == plaintext

    def test_blob_layout(self):
        blob = seal(b"k" * 16, b"i" * 12, b"abc")
        assert blob[:12] == b"i" * 12
        assert len(blob) == 12 + 16 + 3

    def test_short_blob_rejected(self):
        with pytest.raises(IntegrityError):
            open_(b"k" * 16, b"too-short")

    def test_randomised_ivs_give_distinct_ciphertexts(self):
        a = seal(b"k" * 16, b"i" * 12, b"same message")
        b = seal(b"k" * 16, b"j" * 12, b"same message")
        assert a[28:] != b[28:]
