"""SHA-256 helpers: vectors and the domain-separated multi-input hash."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashes import hmac_sha256, sha256, tagged_hash


class TestSha256:
    def test_empty_vector(self):
        assert sha256(b"").hex() == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_abc_vector(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )


class TestHmac:
    def test_rfc4231_case2(self):
        mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert mac.hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )


class TestTaggedHash:
    def test_deterministic(self):
        assert tagged_hash(b"d", b"a", b"b") == tagged_hash(b"d", b"a", b"b")

    def test_domain_separation(self):
        assert tagged_hash(b"d1", b"a") != tagged_hash(b"d2", b"a")

    def test_component_boundaries_matter(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert tagged_hash(b"d", b"ab", b"c") != tagged_hash(b"d", b"a", b"bc")

    def test_arity_matters(self):
        assert tagged_hash(b"d", b"a") != tagged_hash(b"d", b"a", b"")

    @given(st.lists(st.binary(max_size=32), min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_always_32_bytes(self, parts):
        assert len(tagged_hash(b"domain", *parts)) == 32
