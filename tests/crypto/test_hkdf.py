"""HKDF against the RFC 5869 test vectors."""

import pytest

from repro.crypto.hkdf import hkdf, hkdf_expand, hkdf_extract
from repro.errors import CryptoError


class TestRfc5869:
    def test_case1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_case3_empty_salt_and_info(self):
        prk = hkdf_extract(b"", bytes.fromhex("0b" * 22))
        okm = hkdf_expand(prk, b"", 42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )


class TestApi:
    def test_one_shot_matches_two_step(self):
        assert hkdf(b"ikm", b"salt", b"info", 32) == hkdf_expand(
            hkdf_extract(b"salt", b"ikm"), b"info", 32
        )

    def test_distinct_infos_give_distinct_keys(self):
        assert hkdf(b"ikm", info=b"a") != hkdf(b"ikm", info=b"b")

    @pytest.mark.parametrize("length", [0, -1, 255 * 32 + 1])
    def test_invalid_lengths(self, length):
        with pytest.raises(CryptoError):
            hkdf_expand(b"\x00" * 32, b"", length)
