"""The from-scratch SHA-256: FIPS vectors and hashlib equivalence."""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha256 import _H0, _K, sha256_pure


class TestVectors:
    def test_empty(self):
        assert sha256_pure(b"").hex() == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_abc(self):
        assert sha256_pure(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_two_block_message(self):
        msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha256_pure(msg).hex() == (
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        )

    def test_derived_constants_match_fips(self):
        # Spot-check the derived constants against published values.
        assert _H0[0] == 0x6A09E667
        assert _H0[7] == 0x5BE0CD19
        assert _K[0] == 0x428A2F98
        assert _K[63] == 0xC67178F2


class TestEquivalence:
    @given(st.binary(max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_matches_hashlib(self, data):
        assert sha256_pure(data) == hashlib.sha256(data).digest()

    def test_block_boundaries(self):
        for size in (55, 56, 57, 63, 64, 65, 119, 120, 128):
            data = bytes(range(256))[:size] * 1
            data = (b"x" * size)
            assert sha256_pure(data) == hashlib.sha256(data).digest()
