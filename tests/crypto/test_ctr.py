"""CTR mode: involution, keystream structure, counter arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128
from repro.crypto.ctr import ctr_transform, _counter_blocks
from repro.errors import CryptoError

KEY = b"0123456789abcdef"
CTR0 = b"\x00" * 12 + (2).to_bytes(4, "big")


class TestCtr:
    @given(st.binary(max_size=4096))
    @settings(max_examples=30, deadline=None)
    def test_involution(self, data):
        cipher = AES128(KEY)
        assert ctr_transform(cipher, CTR0, ctr_transform(cipher, CTR0, data)) == data

    def test_empty_input(self):
        assert ctr_transform(AES128(KEY), CTR0, b"") == b""

    def test_keystream_differs_per_block(self):
        zeros = b"\x00" * 64
        ks = ctr_transform(AES128(KEY), CTR0, zeros)
        blocks = [ks[i:i + 16] for i in range(0, 64, 16)]
        assert len(set(blocks)) == 4

    def test_partial_block(self):
        cipher = AES128(KEY)
        full = ctr_transform(cipher, CTR0, b"\x00" * 32)
        part = ctr_transform(cipher, CTR0, b"\x00" * 20)
        assert part == full[:20]

    def test_counter_wraps_at_32_bits(self):
        start = b"\x00" * 12 + (0xFFFFFFFF).to_bytes(4, "big")
        blocks = _counter_blocks(start, 2)
        assert blocks[0, 12:].tobytes() == b"\xff\xff\xff\xff"
        assert blocks[1, 12:].tobytes() == b"\x00\x00\x00\x00"
        assert blocks[1, :12].tobytes() == b"\x00" * 12

    def test_rejects_bad_counter_size(self):
        with pytest.raises(CryptoError):
            _counter_blocks(b"\x00" * 8, 1)
