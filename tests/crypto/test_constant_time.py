"""Constant-time helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.constant_time import bytes_eq, select


class TestBytesEq:
    @given(st.binary(max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_reflexive(self, data):
        assert bytes_eq(data, data)

    @given(st.binary(min_size=1, max_size=64), st.integers(0, 63))
    @settings(max_examples=40, deadline=None)
    def test_single_flip_detected(self, data, position):
        position %= len(data)
        flipped = bytearray(data)
        flipped[position] ^= 0x01
        assert not bytes_eq(data, bytes(flipped))

    def test_length_mismatch(self):
        assert not bytes_eq(b"abc", b"abcd")

    def test_accepts_bytearray(self):
        assert bytes_eq(bytearray(b"xy"), b"xy")

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            bytes_eq("abc", b"abc")


class TestSelect:
    def test_true_branch(self):
        assert select(True, b"AAAA", b"BBBB") == b"AAAA"

    def test_false_branch(self):
        assert select(False, b"AAAA", b"BBBB") == b"BBBB"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            select(True, b"short", b"longer")
