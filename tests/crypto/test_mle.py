"""Message-locked encryption: CE determinism, RCE security shape."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.crypto.mle import ConvergentEncryption, RandomizedConvergentEncryption
from repro.errors import IntegrityError


class TestConvergentEncryption:
    def test_same_message_same_ciphertext(self):
        ce = ConvergentEncryption()
        assert ce.encrypt(b"message") == ce.encrypt(b"message")

    def test_tags_equal_iff_messages_equal(self):
        ce = ConvergentEncryption()
        assert ce.tag(b"m1") == ce.tag(b"m1")
        assert ce.tag(b"m1") != ce.tag(b"m2")

    @given(st.binary(max_size=512))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, message):
        ce = ConvergentEncryption()
        ct = ce.encrypt(message)
        assert ce.decrypt(ct, message) == message

    def test_wrong_message_hint_fails(self):
        ce = ConvergentEncryption()
        ct = ce.encrypt(b"the real message")
        with pytest.raises(IntegrityError):
            ce.decrypt(ct, b"a wrong guess")


class TestRandomizedConvergentEncryption:
    def _rce(self, seed=b"rce-seed"):
        return RandomizedConvergentEncryption(HmacDrbg(seed))

    def test_tags_deterministic_across_uploaders(self):
        assert self._rce(b"u1").tag(b"m") == self._rce(b"u2").tag(b"m")

    def test_ciphertexts_randomized(self):
        rce = self._rce()
        a = rce.encrypt(b"same message")
        b = rce.encrypt(b"same message")
        assert a.tag == b.tag
        assert a.sealed != b.sealed  # fresh key + IV each time

    @given(st.binary(max_size=512))
    @settings(max_examples=30, deadline=None)
    def test_any_owner_can_decrypt(self, message):
        uploader = self._rce(b"uploader")
        downloader_view = uploader.encrypt(message)
        # A different party that owns the message unwraps successfully.
        other = self._rce(b"other-party")
        assert other.decrypt(downloader_view, message) == message

    def test_non_owner_cannot_decrypt(self):
        rce = self._rce()
        ct = rce.encrypt(b"the real message")
        with pytest.raises(IntegrityError):
            rce.decrypt(ct, b"not the message")

    def test_tag_reveals_nothing_but_equality(self):
        rce = self._rce()
        # Tag is a hash of the message key, not the message: same length
        # regardless of message size, distinct across messages.
        t1, t2 = rce.tag(b"a"), rce.tag(b"a" * 10000)
        assert len(t1) == len(t2) == 32
        assert t1 != t2
