"""A miniature property-based testing runner (stdlib only).

The dev extras list hypothesis, but the container baseline cannot assume
it; this module provides the 10% of it these tests need: seeded random
generators, a ``for_all`` decorator that runs a property N times, and
greedy shrinking to a minimal counterexample.  Failures report the seed
and both the original and the shrunk inputs, so a red property replays
deterministically.

Usage::

    from tests.proptest import for_all, byte_strings, integers

    @for_all(byte_strings(max_len=64), runs=50)
    def test_roundtrip(data):
        assert decode(encode(data)) == data

The decorated function becomes a zero-argument pytest test.  Seeds
derive from the property's name (stable across runs and platforms);
pass ``seed=`` to pin one explicitly.
"""

from __future__ import annotations

import functools
import random
import zlib


class Gen:
    """A value generator plus its shrink strategy."""

    def __init__(self, sample, shrinker=None):
        self._sample = sample
        self._shrinker = shrinker

    def __call__(self, rng: random.Random):
        return self._sample(rng)

    def shrinks(self, value):
        """Candidate simpler values, most aggressive first."""
        if self._shrinker is None:
            return
        yield from self._shrinker(value)


# -- generators ---------------------------------------------------------------
def integers(lo: int = 0, hi: int = 2**32 - 1) -> Gen:
    def shrinker(value):
        if value == lo:
            return
        yield lo
        # Binary descent: successively smaller jumps towards ``value`` let the
        # greedy shrinker converge on the exact failure boundary.
        delta = value - lo
        while delta > 1:
            delta //= 2
            yield value - delta

    return Gen(lambda rng: rng.randint(lo, hi), shrinker)


def byte_strings(min_len: int = 0, max_len: int = 64) -> Gen:
    def sample(rng):
        length = rng.randint(min_len, max_len)
        return rng.randbytes(length)

    def shrinker(value):
        if len(value) > min_len:
            yield value[:min_len]
            yield value[: max(min_len, len(value) // 2)]
            yield value[:-1]
        if value and any(value):
            yield bytes(len(value))  # all zeros, same length

    return Gen(sample, shrinker)


def sampled_from(choices) -> Gen:
    choices = list(choices)

    def shrinker(value):
        index = choices.index(value)
        if index > 0:
            yield choices[0]

    return Gen(lambda rng: rng.choice(choices), shrinker)


def lists_of(element: Gen, min_len: int = 0, max_len: int = 8) -> Gen:
    def sample(rng):
        return [element(rng) for _ in range(rng.randint(min_len, max_len))]

    def shrinker(value):
        if len(value) > min_len:
            yield value[:min_len]
            yield value[: max(min_len, len(value) // 2)]
            yield value[:-1]
        for index, item in enumerate(value):
            for smaller in element.shrinks(item):
                yield value[:index] + [smaller] + value[index + 1:]
                break  # one element-shrink per position keeps this bounded

    return Gen(sample, shrinker)


# -- the runner ---------------------------------------------------------------
def _holds(prop, values) -> bool:
    try:
        prop(*values)
    except Exception:
        return False
    return True


def _shrink(prop, gens, values, budget: int = 300):
    current = list(values)
    improved = True
    while improved and budget > 0:
        improved = False
        for index, gen in enumerate(gens):
            for candidate in gen.shrinks(current[index]):
                if budget <= 0:
                    return current
                budget -= 1
                trial = list(current)
                trial[index] = candidate
                if trial != current and not _holds(prop, trial):
                    current = trial
                    improved = True
                    break
            if improved:
                break
    return current


def for_all(*gens: Gen, runs: int = 100, seed: int | None = None):
    """Decorator: run ``prop`` against ``runs`` random inputs, shrinking
    any counterexample before reporting it."""

    def decorate(prop):
        @functools.wraps(prop)
        def runner():
            base_seed = (
                seed if seed is not None else zlib.crc32(prop.__name__.encode())
            )
            rng = random.Random(base_seed)
            for run in range(runs):
                values = [gen(rng) for gen in gens]
                try:
                    prop(*values)
                except Exception as exc:
                    minimal = _shrink(prop, gens, values)
                    raise AssertionError(
                        f"property {prop.__name__} falsified on run {run} "
                        f"(seed={base_seed}):\n"
                        f"  original: {values!r}\n"
                        f"  minimal:  {minimal!r}\n"
                        f"  error: {type(exc).__name__}: {exc}"
                    ) from exc

        # functools.wraps records ``__wrapped__``; pytest would follow it and
        # mistake the property's arguments for fixtures.
        del runner.__wrapped__
        runner.property = prop  # the raw N-argument predicate, for reuse
        return runner

    return decorate
