"""Baselines: UNIC plaintext memoization and runtime presets."""

import pytest

from repro.baselines import (
    UnicRuntime,
    UnicStore,
    cross_app_runtime_config,
    no_dedup_runtime_config,
    single_key_runtime_config,
)
from repro.core.scheme import CrossAppScheme, SingleKeyScheme
from repro.crypto.hashes import hmac_sha256
from repro.errors import IntegrityError
from repro.sgx.cost_model import SimClock


def reverse(data: bytes) -> bytes:
    return bytes(reversed(data))


def make_unic(clock=None):
    store = UnicStore(mac_key=b"\x01" * 32)
    runtime = UnicRuntime(store, reverse, encode=lambda b: b, decode=lambda b: b,
                          clock=clock)
    return store, runtime


class TestUnic:
    def test_miss_then_hit(self):
        store, runtime = make_unic()
        out1 = runtime.call(b"abc", b"abc")
        out2 = runtime.call(b"abc", b"abc")
        assert out1 == out2 == b"cba"
        assert runtime.stats.hits == 1
        assert runtime.stats.misses == 1

    def test_plaintext_is_leaked_to_the_host(self):
        # The architectural weakness SPEED fixes: the host can read
        # cached results directly.
        store, runtime = make_unic()
        runtime.call(b"secret input", b"secret input")
        tag = next(iter(store.entries))
        assert store.leak(tag) == reverse(b"secret input")

    def test_mac_detects_replacement_without_key(self):
        store, runtime = make_unic()
        runtime.call(b"abc", b"abc")
        tag = next(iter(store.entries))
        store.overwrite(tag, b"poisoned", b"\x00" * 32)
        with pytest.raises(IntegrityError):
            store.get(tag)

    def test_system_key_holder_can_forge(self):
        # ...but anyone holding the single system-wide key forges freely.
        store, runtime = make_unic()
        runtime.call(b"abc", b"abc")
        tag = next(iter(store.entries))
        forged = b"attacker result"
        store.overwrite(tag, forged, hmac_sha256(store.mac_key, tag + forged))
        assert store.get(tag) == forged

    def test_clock_charged(self):
        clock = SimClock()
        _, runtime = make_unic(clock)
        runtime.call(b"abc", b"abc")
        assert clock.cycles > 0


class TestPresets:
    def test_no_dedup(self):
        config = no_dedup_runtime_config("app")
        assert not config.dedup_enabled

    def test_single_key(self):
        config = single_key_runtime_config("app")
        assert isinstance(config.scheme, SingleKeyScheme)
        assert config.dedup_enabled

    def test_cross_app(self):
        config = cross_app_runtime_config("app")
        assert isinstance(config.scheme, CrossAppScheme)

    def test_app_id_threaded(self):
        assert no_dedup_runtime_config("x").app_id == "x"
