"""PipelineEngine unit tests: coalescing, rounds, accounting, lanes.

These drive the engine against fake clients/clocks so every cycle is
chosen by the test — the integration suites (cluster, core, simtest)
cover the real wire path.
"""

from types import SimpleNamespace

import pytest

from repro.engine import EngineBatch, EngineConfig, PipelineEngine
from repro.errors import ChannelError, ProtocolError, TransportError
from repro.net.messages import GetRequest, PutRequest


class FakeClock:
    """A SimClock stand-in: advance() is the only way time moves."""

    def __init__(self):
        self.cycles = 0.0
        self.params = SimpleNamespace(cpu_freq_hz=1_000_000_000.0)

    def snapshot(self):
        return self.cycles

    def since(self, snapshot):
        return self.cycles - snapshot

    def advance(self, cycles):
        self.cycles += cycles


class FakeClient:
    """submit()/wait() peer with deterministic per-op costs.

    ``shard_of`` maps a request tag to the shard clock that serves it
    (defaults to the single shard).  Costs: submit charges the app clock
    ``submit_cost``; wait charges the serving shard ``serve_cost`` and
    the app clock ``wait_cost``.
    """

    def __init__(self, app_clock, shard_clocks, shard_of=None,
                 submit_cost=10.0, wait_cost=5.0, serve_cost=30.0):
        self.app_clock = app_clock
        self.shard_clocks = shard_clocks
        self.shard_of = shard_of or (lambda tag: next(iter(shard_clocks)))
        self.submit_cost = submit_cost
        self.wait_cost = wait_cost
        self.serve_cost = serve_cost
        self.submitted = []
        self.fail_submit = False
        self.fail_wait = False
        self._next = 0
        self._pending = {}

    def submit(self, request):
        if self.fail_submit:
            raise TransportError("submit lost")
        self.submitted.append(request)
        self.app_clock.advance(self.submit_cost)
        handle = self._next
        self._next += 1
        self._pending[handle] = request
        return handle

    def wait(self, handle):
        request = self._pending.pop(handle)
        if self.fail_wait:
            raise TransportError("reply lost")
        self.shard_clocks[self.shard_of(request.tag)].advance(self.serve_cost)
        self.app_clock.advance(self.wait_cost)
        return ("response", request.tag)


class GroupedFakeClient(FakeClient):
    """Adds the plan_gets/submit_gets/wait_gets grouped surface."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.group_submits = []
        self.fail_group_wait = False

    def plan_gets(self, requests):
        groups = {}
        for i, request in enumerate(requests):
            groups.setdefault(self.shard_of(request.tag), []).append(i)
        return list(groups.values())

    def submit_gets(self, requests):
        if self.fail_submit:
            raise TransportError("submit lost")
        self.group_submits.append(list(requests))
        self.app_clock.advance(self.submit_cost)
        handle = self._next
        self._next += 1
        self._pending[handle] = list(requests)
        return handle

    def wait_gets(self, handle, n_items):
        requests = self._pending.pop(handle)
        assert len(requests) == n_items
        if self.fail_group_wait:
            raise ChannelError("group reply lost")
        for request in requests:
            self.shard_clocks[self.shard_of(request.tag)].advance(
                self.serve_cost
            )
        self.app_clock.advance(self.wait_cost)
        return [("response", r.tag) for r in requests]

    # -- the grouped PUT surface mirrors the GET one ----------------------
    plan_puts = plan_gets
    submit_puts = submit_gets
    wait_puts = wait_gets


def get(tag: bytes) -> GetRequest:
    return GetRequest(tag=tag.ljust(32, b"\0"), app_id="engine-test")


def putreq(tag: bytes) -> PutRequest:
    return PutRequest(
        tag=tag.ljust(32, b"\0"), challenge=b"r" * 32,
        wrapped_key=b"k" * 16, sealed_result=b"blob", app_id="engine-test",
    )


def make_engine(n_shards=1, shard_of=None, client_cls=FakeClient, **config):
    app = FakeClock()
    shards = {f"shard-{i}": FakeClock() for i in range(n_shards)}
    client = client_cls(app, shards, shard_of=shard_of)
    engine = PipelineEngine(
        client, app, shard_clocks=shards, config=EngineConfig(**config)
    )
    return engine, client, app, shards


class TestConfig:
    def test_depth_must_be_positive(self):
        with pytest.raises(ProtocolError):
            EngineConfig(depth=0)

    def test_workers_must_be_positive(self):
        with pytest.raises(ProtocolError):
            EngineConfig(workers=0)


class TestCoalescing:
    def test_duplicate_tags_take_one_round_trip(self):
        engine, client, _, _ = make_engine(depth=8)
        batch = engine.run_gets([get(b"a"), get(b"a"), get(b"a"), get(b"b")])
        assert len(client.submitted) == 2  # one per distinct tag
        assert batch.leader_of == {1: 0, 2: 0}
        assert batch.responses[1] is batch.responses[0]
        assert batch.responses[2] is batch.responses[0]
        assert batch.coalesced == 2
        assert engine.coalesced_total == 2

    def test_followers_cost_no_cycles(self):
        engine, _, app, shards = make_engine(depth=8)
        engine.run_gets([get(b"a")])
        single_app = app.cycles
        single_shard = shards["shard-0"].cycles
        engine2, _, app2, shards2 = make_engine(depth=8)
        engine2.run_gets([get(b"a")] * 10)
        assert app2.cycles == single_app
        assert shards2["shard-0"].cycles == single_shard

    def test_coalesce_off_sends_every_request(self):
        engine, client, _, _ = make_engine(depth=8, coalesce=False)
        batch = engine.run_gets([get(b"a")] * 3)
        assert len(client.submitted) == 3
        assert batch.leader_of == {}

    def test_non_get_messages_are_never_coalesced(self):
        engine, client, _, _ = make_engine(depth=8)
        message = SimpleNamespace(tag=b"x" * 32)  # not a GetRequest
        engine.run_gets([message, message])
        assert len(client.submitted) == 2


class TestRounds:
    def test_depth_bounds_outstanding_requests_per_round(self):
        engine, _, _, _ = make_engine(depth=2)
        engine.run_gets([get(bytes([i])) for i in range(5)])
        assert engine.rounds == 3
        assert engine.ops == 5

    def test_responses_keep_request_order(self):
        engine, _, _, _ = make_engine(depth=3)
        tags = [bytes([i]) for i in range(7)]
        batch = engine.run_gets([get(t) for t in tags])
        assert [r[1] for r in batch.responses] == [
            t.ljust(32, b"\0") for t in tags
        ]

    def test_makespan_never_exceeds_serial(self):
        engine, _, _, _ = make_engine(n_shards=3, depth=8, workers=4,
                                      shard_of=lambda tag: f"shard-{tag[0] % 3}")
        engine.run_gets([get(bytes([i])) for i in range(12)])
        assert engine.makespan_cycles <= engine.serial_cycles

    def test_depth1_workers1_degenerates_to_serial(self):
        engine, _, _, _ = make_engine(depth=1, workers=1)
        engine.run_gets([get(bytes([i])) for i in range(4)])
        assert engine.makespan_cycles == pytest.approx(engine.serial_cycles)
        assert engine.overlap_cycles_saved == pytest.approx(0.0)

    def test_colocated_store_forces_serial_accounting(self):
        # The "shard" clock IS the app clock: nothing can overlap.
        app = FakeClock()
        client = FakeClient(app, {"local": app})
        engine = PipelineEngine(
            client, app, shard_clocks={"local": app},
            config=EngineConfig(depth=8, workers=4),
        )
        engine.run_gets([get(bytes([i])) for i in range(6)])
        assert engine.makespan_cycles == pytest.approx(engine.serial_cycles)

    def test_distinct_shards_overlap(self):
        engine, _, _, _ = make_engine(
            n_shards=2, depth=2, workers=2,
            shard_of=lambda tag: f"shard-{tag[0] % 2}",
        )
        engine.run_gets([get(bytes([0])), get(bytes([1]))])
        # Serial: 2 lanes x 15 app + 2 shards x 30 = 90.  Critical path:
        # one op's own chain (15 + 30) = 45.
        assert engine.serial_cycles == pytest.approx(90.0)
        assert engine.makespan_cycles == pytest.approx(45.0)
        assert engine.overlap_cycles_saved == pytest.approx(45.0)

    def test_puts_are_never_coalesced(self):
        engine, client, _, _ = make_engine(depth=4)
        batch = engine.run_puts([get(b"a"), get(b"a")])  # message type is
        assert len(client.submitted) == 2                 # irrelevant here
        assert batch.leader_of == {}


class TestFailures:
    def test_submit_failure_surfaces_as_exception_response(self):
        engine, client, _, _ = make_engine(depth=4)
        client.fail_submit = True
        batch = engine.run_gets([get(b"a"), get(b"b")])
        assert all(isinstance(r, TransportError) for r in batch.responses)
        assert engine.failures == 2

    def test_wait_failure_surfaces_as_exception_response(self):
        engine, client, _, _ = make_engine(depth=4)
        client.fail_wait = True
        batch = engine.run_gets([get(b"a")])
        assert isinstance(batch.responses[0], TransportError)
        assert engine.failures == 1

    def test_followers_share_their_leaders_failure(self):
        engine, client, _, _ = make_engine(depth=4)
        client.fail_wait = True
        batch = engine.run_gets([get(b"a"), get(b"a")])
        assert batch.responses[1] is batch.responses[0]
        assert isinstance(batch.responses[1], TransportError)


class TestGroupedRounds:
    def test_one_submit_per_shard_group(self):
        engine, client, _, _ = make_engine(
            n_shards=2, depth=8, client_cls=GroupedFakeClient,
            shard_of=lambda tag: f"shard-{tag[0] % 2}",
        )
        tags = [bytes([i]) for i in range(6)]
        batch = engine.run_gets([get(t) for t in tags])
        assert len(client.group_submits) == 2  # one record per shard
        assert [r[1] for r in batch.responses] == [
            t.ljust(32, b"\0") for t in tags
        ]

    def test_group_wait_failure_fails_every_item_of_the_group(self):
        engine, client, _, _ = make_engine(
            n_shards=1, depth=8, client_cls=GroupedFakeClient
        )
        client.fail_group_wait = True
        batch = engine.run_gets([get(b"a"), get(b"b")])
        assert all(isinstance(r, ChannelError) for r in batch.responses)
        assert engine.failures == 2


class TestGroupedPutRounds:
    def test_put_round_ships_one_record_per_shard_group(self):
        engine, client, _, _ = make_engine(
            n_shards=2, depth=8, client_cls=GroupedFakeClient,
            shard_of=lambda tag: f"shard-{tag[0] % 2}",
        )
        tags = [bytes([i]) for i in range(6)]
        batch = engine.run_puts([putreq(t) for t in tags])
        assert len(client.group_submits) == 2  # one record per shard
        assert [r[1] for r in batch.responses] == [
            t.ljust(32, b"\0") for t in tags
        ]

    def test_grouped_puts_are_never_coalesced(self):
        engine, client, _, _ = make_engine(
            n_shards=1, depth=8, client_cls=GroupedFakeClient
        )
        batch = engine.run_puts([putreq(b"a"), putreq(b"a"), putreq(b"a")])
        submitted = sum(len(group) for group in client.group_submits)
        assert submitted == 3  # every duplicate wants its own verdict
        assert engine.coalesced_total == 0
        assert len(batch.responses) == 3

    def test_distinct_shard_put_groups_overlap(self):
        # Two shards each serving one group: the round's makespan is one
        # group's serve time, not two, plus the per-lane client work.
        engine, client, app, shards = make_engine(
            n_shards=2, depth=8, workers=2, client_cls=GroupedFakeClient,
            shard_of=lambda tag: f"shard-{tag[0] % 2}",
        )
        t0 = app.cycles
        engine.run_puts([putreq(bytes([i])) for i in range(2)])
        elapsed = app.cycles - t0
        serial = 2 * (client.submit_cost + client.serve_cost + client.wait_cost)
        assert elapsed < serial

    def test_put_group_wait_failure_fails_every_item_of_the_group(self):
        engine, client, _, _ = make_engine(
            n_shards=1, depth=8, client_cls=GroupedFakeClient
        )
        client.fail_group_wait = True
        batch = engine.run_puts([putreq(b"a"), putreq(b"b")])
        assert all(isinstance(r, ChannelError) for r in batch.responses)
        assert engine.failures == 2

    def test_plain_client_still_takes_the_per_op_path(self):
        engine, client, _, _ = make_engine(n_shards=1, depth=8)
        batch = engine.run_puts([putreq(b"a"), putreq(b"b")])
        assert len(client.submitted) == 2  # per-op submit(), no grouping
        assert len(batch.responses) == 2


class TestBackground:
    def test_background_work_overlaps_next_round(self):
        engine, client, app, shards = make_engine(depth=8)
        with engine.background():
            app.advance(7.0)
        engine.run_gets([get(b"a")])
        # serial = lane (15) + shard (30) + bg (7); makespan = the op's
        # chain (45) because the bg lane fits under it.
        assert engine.serial_cycles == pytest.approx(52.0)
        assert engine.makespan_cycles == pytest.approx(45.0)

    def test_settle_folds_unoverlapped_background_serially(self):
        engine, _, app, shards = make_engine(depth=8)
        with engine.background():
            app.advance(7.0)
            shards["shard-0"].advance(3.0)
        engine.settle()
        assert engine.makespan_cycles == pytest.approx(7.0)
        assert engine.serial_cycles == pytest.approx(10.0)
        engine.settle()  # idempotent
        assert engine.serial_cycles == pytest.approx(10.0)


class TestParallelRegion:
    def test_tasks_spread_over_worker_lanes(self):
        engine, _, app, _ = make_engine(depth=8, workers=4)
        with engine.parallel_region() as region:
            for _ in range(4):
                with region.task():
                    app.advance(10.0)
        assert engine.makespan_cycles == pytest.approx(10.0)
        assert engine.serial_cycles == pytest.approx(40.0)

    def test_single_worker_region_is_serial(self):
        engine, _, app, _ = make_engine(depth=8, workers=1)
        with engine.parallel_region() as region:
            for _ in range(4):
                with region.task():
                    app.advance(10.0)
        assert engine.makespan_cycles == pytest.approx(40.0)

    def test_empty_region_charges_nothing(self):
        engine, _, _, _ = make_engine()
        with engine.parallel_region():
            pass
        assert engine.makespan_cycles == 0.0
        assert engine.serial_cycles == 0.0


class TestSnapshot:
    def test_snapshot_uses_canonical_engine_keys(self):
        engine, _, _, _ = make_engine(depth=4, workers=2)
        engine.run_gets([get(b"a"), get(b"a")])
        snap = engine.snapshot()
        assert snap["engine.depth"] == 4
        assert snap["engine.workers"] == 2
        assert snap["engine.rounds"] == 1
        assert snap["engine.ops"] == 1  # the coalesced follower never ran
        assert snap["engine.coalesced_gets"] == 1
        assert snap["engine.sim_seconds_total"] > 0.0

    def test_reset_accounting_clears_counters(self):
        engine, _, _, _ = make_engine()
        engine.run_gets([get(b"a")])
        engine.reset_accounting()
        assert engine.makespan_cycles == 0.0
        assert engine.rounds == 0
        assert engine.ops == 0


class TestWorkerClamp:
    def test_workers_clamped_to_static_depth(self):
        # Lanes beyond the submit window can never hold an op; the
        # config normalizes workers down so accounting (engine.py
        # _lanes) never divides over idle lanes.
        config = EngineConfig(depth=2, workers=8)
        assert config.workers == 2

    def test_workers_clamped_to_max_depth_when_adaptive(self):
        config = EngineConfig(depth="auto", workers=64, max_depth=16)
        assert config.workers == 16

    def test_workers_within_depth_untouched(self):
        assert EngineConfig(depth=8, workers=3).workers == 3

    def test_lane_count_pins_clamped_workers(self):
        engine, _, _, shards = make_engine(n_shards=2, depth=2, workers=8)
        remote = {sid: c for sid, c in shards.items()}
        assert engine._lanes(remote) == 2
        # An explicit narrower round narrows the lanes with it.
        assert engine._lanes(remote, depth=1) == 1
        # No remote machine: nothing to overlap with, one serial lane.
        assert engine._lanes({}) == 1


class TestAdaptiveEngine:
    def test_auto_depth_starts_at_min_and_grows(self):
        engine, client, _, _ = make_engine(
            n_shards=2, depth="auto", min_depth=1, max_depth=8,
            shard_of=lambda tag: f"shard-{tag[0] % 2}",
        )
        assert engine.depth_current == 1
        tags = [get(bytes([i])) for i in range(16)]
        engine.run_gets(tags)
        # Slow-start over full rounds: 1 -> 2 -> 4 -> 8 within one batch.
        assert engine.depth_current > 1
        assert engine.controller.grows >= 2

    def test_adaptive_rounds_reread_depth_mid_batch(self):
        engine, client, _, _ = make_engine(
            n_shards=2, depth="auto", min_depth=1, max_depth=4,
            shard_of=lambda tag: f"shard-{tag[0] % 2}",
        )
        engine.run_gets([get(bytes([i])) for i in range(8)])
        # Rounds were sized 1, 2, 4, 1(tail): more rounds than a static
        # depth-4 engine (2), fewer than depth-1 (8).
        assert 2 < engine.rounds < 8

    def test_backpressure_shrinks_next_round(self):
        engine, client, _, _ = make_engine(
            n_shards=2, depth="auto", min_depth=1, max_depth=8,
            shard_of=lambda tag: f"shard-{tag[0] % 2}",
        )
        engine.run_gets([get(bytes([i])) for i in range(15)])  # grow to 8
        depth_before = engine.controller.depth
        engine.note_backpressure()
        engine.run_gets([get(bytes([i])) for i in range(depth_before)])
        assert engine.controller.log[-1][2] == "backpressure"
        assert engine.controller.depth == max(1, depth_before // 2)

    def test_migration_caps_depth_and_yields_slots(self):
        engine, client, _, _ = make_engine(
            n_shards=2, depth="auto", min_depth=1, max_depth=32,
            shard_of=lambda tag: f"shard-{tag[0] % 2}",
        )
        engine.run_gets([get(bytes([i])) for i in range(64)])  # grow past 8
        assert engine.controller.round_depth(False) > 8
        assert engine.background_budget() == 1
        client.in_transition = True  # dual-ownership window opens
        cap = engine.controller.migration_cap
        assert engine.depth_current == cap
        engine.run_gets([get(bytes([i])) for i in range(2 * cap)])
        assert engine.controller.migration_capped > 0
        assert engine.background_budget() == 1 + engine.controller.yielded_slots
        assert engine.controller.yielded_slots > 0
        client.in_transition = False  # window closes: full depth returns
        assert engine.depth_current > cap

    def test_background_budget_widens_with_destination_parallelism(self):
        # A planned window streaming to N distinct gaining shards gets N
        # background lanes — transfers to distinct machines overlap each
        # other, not just the foreground.
        engine, client, _, _ = make_engine(
            n_shards=2, depth="auto", min_depth=1, max_depth=32,
            shard_of=lambda tag: f"shard-{tag[0] % 2}",
        )
        assert engine.background_budget() == 1
        assert engine.background_budget(parallelism=4) == 4
        assert engine.background_budget(parallelism=0) == 1  # floored
        client.in_transition = True
        cap = engine.controller.migration_cap
        engine.run_gets([get(bytes([i])) for i in range(2 * cap)])
        yielded = engine.controller.yielded_slots
        assert engine.background_budget(parallelism=4) == 4 + yielded

    def test_failed_round_shrinks(self):
        engine, client, _, _ = make_engine(
            n_shards=2, depth="auto", min_depth=1, max_depth=8,
            shard_of=lambda tag: f"shard-{tag[0] % 2}",
        )
        engine.run_gets([get(bytes([i])) for i in range(15)])
        depth_before = engine.controller.depth
        client.fail_wait = True
        engine.run_gets([get(bytes([i])) for i in range(depth_before)])
        client.fail_wait = False
        assert engine.controller.log[-1][2] == "failures"
        assert engine.controller.depth == max(1, depth_before // 2)

    def test_snapshot_reports_adaptive_metrics(self):
        engine, _, _, _ = make_engine(
            n_shards=2, depth="auto", min_depth=1, max_depth=8,
            shard_of=lambda tag: f"shard-{tag[0] % 2}",
        )
        engine.run_gets([get(bytes([i])) for i in range(8)])
        snap = engine.snapshot()
        assert snap["engine.depth"] == "auto"
        assert snap["engine.depth_current"] == engine.controller.depth
        assert snap["engine.depth_decisions"] == engine.controller.decisions
        assert snap["engine.depth_changes"] == engine.controller.changes
        assert snap["engine.depth_grows"] == engine.controller.grows
        assert snap["engine.depth_shrinks"] == engine.controller.shrinks
        assert snap["engine.depth_migration_caps"] == 0

    def test_static_engine_snapshot_zeroes_adaptive_metrics(self):
        engine, _, _, _ = make_engine(depth=4)
        engine.run_gets([get(b"a")])
        snap = engine.snapshot()
        assert snap["engine.depth_decisions"] == 0
        assert snap["engine.depth_changes"] == 0

    def test_depth_decision_events_traced(self):
        from repro.obs.tracer import Tracer, find_spans

        app = FakeClock()
        shards = {"shard-0": FakeClock(), "shard-1": FakeClock()}
        client = FakeClient(app, shards, shard_of=lambda tag: f"shard-{tag[0] % 2}")
        tracer = Tracer()
        engine = PipelineEngine(
            client, app, shard_clocks=shards, tracer=tracer,
            config=EngineConfig(depth="auto", min_depth=1, max_depth=4),
        )
        engine.run_gets([get(bytes([i])) for i in range(6)])
        events = find_spans(tracer.spans(), "engine.depth_decision")
        assert len(events) == engine.controller.decisions
        first = events[0].attrs
        assert first["prev"] == 1 and first["depth"] == 2
        assert first["reason"] == "grow"
        assert {"ops", "failures", "backpressure", "migration"} <= set(first)

    def test_adaptive_identity_run_gets(self):
        # Depth is a schedule knob, never a semantic one: the adaptive
        # engine returns exactly what a depth-1 engine returns.
        requests = [get(bytes([i % 5])) for i in range(17)]
        auto, _, _, _ = make_engine(
            n_shards=2, depth="auto", min_depth=1, max_depth=8,
            shard_of=lambda tag: f"shard-{tag[0] % 2}",
        )
        one, _, _, _ = make_engine(
            n_shards=2, depth=1,
            shard_of=lambda tag: f"shard-{tag[0] % 2}",
        )
        got = auto.run_gets(list(requests))
        want = one.run_gets(list(requests))
        assert got.responses == want.responses
