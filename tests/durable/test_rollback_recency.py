"""Rollback detection against the hardware monotonic counter, and
GET-recency WAL marks restoring eviction order across recovery."""

import pytest

from repro.durable import take_checkpoint
from repro.errors import RollbackError

from .conftest import durable_deployment, get, put


class TestRollbackDetection:
    def stale_state(self, seed, **config_kwargs):
        d, client = durable_deployment(seed, **config_kwargs)
        put(client, b"one")
        take_checkpoint(d.store)
        log = d.store.durable
        older = (log.checkpoint, list(log.segments), dict(log.blob_area))
        put(client, b"two")
        take_checkpoint(d.store)                 # bumps the counter again
        log.checkpoint, segments, blob_area = older[0], older[1], older[2]
        log.segments[:] = segments
        log.blob_area.clear()
        log.blob_area.update(blob_area)
        d.store.power_fail()
        return d, client

    def test_counter_mismatch_counts_rollback_detected(self):
        d, client = self.stale_state(b"rollback-count")
        report = d.store.recover()
        assert report.rollback_detected
        assert d.store.durable.rollback_detected == 1
        assert d.store.snapshot()["durable.rollback_detected"] == 1

    def test_strict_rollback_refuses_the_stale_state(self):
        d, client = self.stale_state(b"rollback-strict", strict_rollback=True)
        with pytest.raises(RollbackError) as excinfo:
            d.store.recover()
        assert excinfo.value.code == "state_rollback"

    def test_fresh_recovery_detects_no_rollback(self):
        d, client = durable_deployment(b"rollback-clean")
        put(client, b"one")
        take_checkpoint(d.store)
        put(client, b"two")
        d.store.power_fail()
        report = d.store.recover()
        assert not report.rollback_detected
        assert d.store.durable.rollback_detected == 0


class TestRecencyAcrossRecovery:
    """LRU order after recovery matches the no-crash run when GET
    recency is logged (regression for recover-then-evict)."""

    def drive(self, seed, crash):
        d, client = durable_deployment(
            seed, capacity_entries=3, recency_log_interval=1,
        )
        tags = [put(client, bytes([i])) for i in range(3)]
        take_checkpoint(d.store)
        # Touch the LRU-oldest entry: only the REC_TOUCH mark records
        # this read after the checkpoint.
        assert get(client, tags[0]).found
        if crash:
            d.store.power_fail()
            d.store.recover()
        # One more insert must evict tags[1] (the true LRU), not
        # tags[0] (stale-LRU if the touch was lost with the crash).
        fourth = put(client, b"overflow")
        return d, tags, fourth

    def test_recover_then_evict_matches_no_crash_order(self):
        d_live, tags_live, _ = self.drive(b"recency-live", crash=False)
        d_rec, tags_rec, _ = self.drive(b"recency-live", crash=True)
        assert tags_live == tags_rec
        live = set(d_live.store.stored_tags())
        recovered = set(d_rec.store.stored_tags())
        assert live == recovered
        assert tags_live[0] in recovered        # touched entry survived
        assert tags_live[1] not in recovered    # true LRU evicted

    def test_without_recency_marks_the_touch_is_lost(self):
        d, client = durable_deployment(
            b"recency-off", capacity_entries=3, recency_log_interval=0,
        )
        tags = [put(client, bytes([i])) for i in range(3)]
        take_checkpoint(d.store)
        assert get(client, tags[0]).found
        d.store.power_fail()
        d.store.recover()
        put(client, b"overflow")
        # The read was never logged, so recovery restored checkpoint
        # recency and eviction removed the touched entry.
        assert tags[0] not in set(d.store.stored_tags())
