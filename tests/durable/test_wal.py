"""Write-ahead log mechanics: group commit, chaining, record coverage."""

import pytest

from repro import Deployment
from repro.durable.wal import (
    GENESIS_CHAIN,
    REC_PUT,
    REC_REMOVE,
    chain_step,
    decode_segment,
)
from repro.errors import StoreError
from repro.store.resultstore import StoreConfig

from .conftest import batch_put, durable_deployment, put


def decode_all_segments(store):
    """Unseal every committed segment; returns [(prev_chain, first_seq,
    records), ...] in log order."""
    out = []
    with store.enclave.ecall("test-decode"):
        for segment in store.durable.segments:
            out.append(decode_segment(store.enclave.unseal(segment.sealed)))
    return out


class TestGroupCommit:
    def test_every_served_request_commits_before_its_ack(self):
        # Single-item requests never leave buffered records behind: the
        # reply is the ack, so commit runs even below the group size.
        d, client = durable_deployment(b"wal-ack", wal_group_commit=8)
        for i in range(3):
            put(client, bytes([i]))
        log = d.store.durable
        assert log.pending_records == 0
        assert log.records_logged == 3
        assert len(log.segments) == 3

    def test_batch_request_fills_groups_mid_request(self):
        # A 10-record batch at group size 4 seals 4+4 mid-request and
        # the trailing 2 at the end-of-request commit: three segments.
        d, client = durable_deployment(b"wal-group", wal_group_commit=4)
        batch_put(client, [bytes([i]) for i in range(10)])
        log = d.store.durable
        assert log.records_logged == 10
        assert len(log.segments) == 3
        assert [s.n_records for s in log.segments] == [4, 4, 2]
        assert log.pending_records == 0

    def test_segments_chain_through_their_seal_headers(self):
        d, client = durable_deployment(b"wal-chain")
        for i in range(4):
            put(client, bytes([i]))
        log = d.store.durable
        decoded = decode_all_segments(d.store)
        running = GENESIS_CHAIN
        expected_seq = 1
        for segment, (prev_chain, first_seq, records) in zip(
            log.segments, decoded
        ):
            assert prev_chain == running
            assert first_seq == expected_seq
            running = chain_step(segment.sealed.payload)
            assert segment.chain == running
            expected_seq += len(records)
        assert log.chain == running
        assert log.next_seq == expected_seq

    def test_evictions_are_logged_as_remove_records(self):
        d, client = durable_deployment(b"wal-evict", capacity_entries=2)
        tags = [put(client, bytes([i])) for i in range(3)]
        assert d.store.stats.evictions == 1
        records = [r for _, _, recs in decode_all_segments(d.store) for r in recs]
        kinds = [r.kind for r in records]
        assert kinds.count(REC_PUT) == 3
        assert kinds.count(REC_REMOVE) == 1
        evicted = next(r for r in records if r.kind == REC_REMOVE)
        assert evicted.tag in tags

    def test_put_records_carry_the_entry_metadata(self):
        d, client = durable_deployment(b"wal-fields")
        tag = put(client, b"x")
        ((_, _, records),) = decode_all_segments(d.store)
        (record,) = records
        entry = d.store.metadata_entry(tag)
        assert record.tag == tag
        assert record.challenge == entry.challenge
        assert record.wrapped_key == entry.wrapped_key
        assert record.blob_digest == entry.blob_digest
        assert record.size == entry.size
        assert record.app_id == entry.app_id
        # The ciphertext was written through to the durable blob area.
        assert d.store.durable.blob_area[record.blob_digest] == (
            d.store.blobstore.get(entry.blob_ref)
        )


class TestConfigValidation:
    def test_durable_requires_sgx(self):
        with pytest.raises(StoreError):
            Deployment(
                seed=b"wal-nosgx",
                store_config=StoreConfig(durable=True, use_sgx=False),
            )

    def test_durable_rejects_oblivious_metadata(self):
        with pytest.raises(StoreError):
            Deployment(
                seed=b"wal-oram",
                store_config=StoreConfig(durable=True, oblivious_metadata=True),
            )


class TestObservability:
    def test_store_snapshot_merges_durable_counters(self):
        d, client = durable_deployment(b"wal-snap")
        put(client, b"a")
        snap = d.store.snapshot()
        assert snap["durable.appends"] == 1
        assert snap["durable.commits"] == 1
        assert snap["durable.records_logged"] == 1
        assert snap["durable.segments"] == 1
        assert snap["durable.pending_records"] == 0
        assert snap["durable.log_bytes"] > 0
        assert snap["store.puts"] == 1

    def test_non_durable_snapshot_has_no_durable_keys(self):
        d = Deployment(seed=b"wal-plain")
        assert not any(k.startswith("durable.") for k in d.store.snapshot())
