"""Power-fail recovery: round trips, torn tails, chain breaks,
checkpoint compaction, quota re-admission."""

import pytest

from repro import Deployment
from repro.errors import StoreError
from repro.sgx.sealing import SealedBlob
from repro.store.quota import QuotaPolicy

from .conftest import durable_deployment, get, make_put, put


def image(store) -> dict:
    """tag -> exact ciphertext bytes currently served."""
    return {
        tag: store.blobstore.get(store.blob_ref_of(tag))
        for tag in store.stored_tags()
    }


def tampered(segment) -> object:
    """The same segment with one flipped ciphertext byte."""
    payload = segment.sealed.payload
    broken = payload[:-1] + bytes([payload[-1] ^ 1])
    return type(segment)(
        first_seq=segment.first_seq,
        n_records=segment.n_records,
        chain=segment.chain,
        sealed=SealedBlob(policy=segment.sealed.policy, payload=broken),
    )


class TestRoundTrip:
    def test_power_fail_wipes_recover_restores_byte_identical(self):
        d, client = durable_deployment(b"rec-round")
        tags = [put(client, bytes([i])) for i in range(5)]
        pre = image(d.store)

        wiped = d.store.power_fail()
        assert wiped == 5
        assert len(d.store) == 0

        report = d.store.recover()
        assert image(d.store) == pre
        assert report.puts_replayed == 5
        assert report.records_replayed == 5
        assert not report.torn_tail and not report.chain_broken
        assert d.store.stats.power_fails == 1
        assert d.store.stats.recoveries == 1
        # Recovered entries serve as ordinary hits.
        assert all(get(client, tag).found for tag in tags)

    def test_replayed_evictions_stay_evicted(self):
        d, client = durable_deployment(b"rec-evict", capacity_entries=2)
        tags = [put(client, bytes([i])) for i in range(3)]
        evicted = [t for t in tags if not d.store.contains(t)]
        pre = image(d.store)
        d.store.power_fail()
        report = d.store.recover()
        assert image(d.store) == pre
        assert report.removes_replayed == 1
        assert all(not d.store.contains(t) for t in evicted)

    def test_unacked_buffered_records_are_lost_atomically(self):
        # A record appended but never committed (no ack ever left) must
        # vanish entirely — the pre-append state is what recovers.
        d, client = durable_deployment(b"rec-unacked")
        tag = put(client, b"kept")
        with d.store.enclave.ecall("test-append"):
            d.store.durable.append_remove(tag)  # buffered, not committed
        assert d.store.durable.pending_records == 1
        d.store.power_fail()
        report = d.store.recover()
        assert d.store.contains(tag)  # the un-acked remove never happened
        assert report.removes_replayed == 0

    def test_recovery_recovers_twice(self):
        d, client = durable_deployment(b"rec-twice")
        put(client, b"a")
        pre = image(d.store)
        d.store.power_fail()
        d.store.recover()
        put(client, b"b")
        pre2 = image(d.store)
        assert len(pre2) == 2
        d.store.power_fail()
        d.store.recover()
        assert image(d.store) == pre2
        assert set(pre) <= set(pre2)


class TestHostTampering:
    def test_torn_last_segment_is_dropped(self):
        d, client = durable_deployment(b"rec-torn")
        tags = [put(client, bytes([i])) for i in range(4)]
        log = d.store.durable
        log.segments[-1] = tampered(log.segments[-1])
        d.store.power_fail()
        report = d.store.recover()
        assert report.torn_tail and not report.chain_broken
        assert report.records_dropped == 1
        assert report.puts_replayed == 3
        assert not d.store.contains(tags[-1])
        assert all(d.store.contains(t) for t in tags[:-1])
        assert log.torn_segments == 1

    def test_corrupt_middle_segment_is_a_chain_break(self):
        d, client = durable_deployment(b"rec-break")
        tags = [put(client, bytes([i])) for i in range(4)]
        log = d.store.durable
        log.segments[1] = tampered(log.segments[1])
        d.store.power_fail()
        report = d.store.recover()
        assert report.chain_broken and not report.torn_tail
        assert report.records_dropped == 3  # the break and everything after
        assert d.store.contains(tags[0])
        assert all(not d.store.contains(t) for t in tags[1:])
        assert log.chain_breaks == 1

    def test_reordered_segments_are_a_chain_break(self):
        d, client = durable_deployment(b"rec-reorder")
        [put(client, bytes([i])) for i in range(4)]
        log = d.store.durable
        log.segments[1], log.segments[2] = log.segments[2], log.segments[1]
        d.store.power_fail()
        report = d.store.recover()
        assert report.chain_broken
        assert report.puts_replayed == 1  # replay stops at the swap

    def test_dropped_middle_segment_is_a_chain_break(self):
        d, client = durable_deployment(b"rec-drop")
        [put(client, bytes([i])) for i in range(4)]
        log = d.store.durable
        del log.segments[1]
        d.store.power_fail()
        report = d.store.recover()
        assert report.chain_broken
        assert report.puts_replayed == 1

    def test_missing_blob_is_counted_not_fatal(self):
        d, client = durable_deployment(b"rec-blob")
        tags = [put(client, bytes([i])) for i in range(3)]
        victim = d.store.metadata_entry(tags[1]).blob_digest
        del d.store.durable.blob_area[victim]
        d.store.power_fail()
        report = d.store.recover()
        assert report.blobs_missing == 1
        assert report.puts_replayed == 2
        assert not d.store.contains(tags[1])
        assert d.store.contains(tags[0]) and d.store.contains(tags[2])


class TestCheckpointing:
    def test_interval_folds_the_log_into_a_checkpoint(self):
        d, client = durable_deployment(b"rec-ckpt", checkpoint_interval=4)
        [put(client, bytes([i])) for i in range(6)]
        log = d.store.durable
        assert log.checkpoints >= 1
        assert log.checkpoint is not None
        assert log.records_in_log() < 6  # folded segments were compacted

    def test_recovery_from_checkpoint_plus_tail(self):
        d, client = durable_deployment(b"rec-ckpt2", checkpoint_interval=4)
        tags = [put(client, bytes([i])) for i in range(6)]
        pre = image(d.store)
        d.store.power_fail()
        report = d.store.recover()
        assert image(d.store) == pre
        assert report.checkpoint_seq >= 4
        assert report.entries_restored >= 4      # from the checkpoint image
        assert report.entries_restored + report.puts_replayed == 6
        assert all(d.store.contains(t) for t in tags)

    def test_recovery_installs_a_fresh_anchor(self):
        # After recovery the rebuilt state is itself checkpointed, so a
        # second immediate failure replays nothing.
        d, client = durable_deployment(b"rec-anchor")
        [put(client, bytes([i])) for i in range(3)]
        d.store.power_fail()
        d.store.recover()
        assert d.store.durable.records_in_log() == 0
        pre = image(d.store)
        d.store.power_fail()
        report = d.store.recover()
        assert report.records_replayed == 0
        assert report.entries_restored == 3
        assert image(d.store) == pre


class TestQuotaAcrossRecovery:
    def test_quota_usage_is_readmitted_by_replay(self):
        d, client = durable_deployment(
            b"rec-quota",
            quota=QuotaPolicy(max_bytes_per_app=150),
        )
        assert client.call(make_put(b"a", size=64)).accepted
        assert client.call(make_put(b"b", size=64)).accepted
        rejected = client.call(make_put(b"c", size=64))
        assert not rejected.accepted and "quota" in rejected.reason

        d.store.power_fail()
        d.store.recover()
        # Replay re-admitted both entries' usage: the app is still at
        # its limit, so a restart is not a quota-laundering loophole.
        still_rejected = client.call(make_put(b"d", size=64))
        assert not still_rejected.accepted
        assert "quota" in still_rejected.reason


class TestGuards:
    def test_power_fail_requires_durable_mode(self):
        d = Deployment(seed=b"rec-plain")
        with pytest.raises(StoreError):
            d.store.power_fail()
        with pytest.raises(StoreError):
            d.store.recover()
