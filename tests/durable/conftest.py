"""Shared helpers for the durable (WAL / checkpoint / recovery) suite."""

from __future__ import annotations

from repro import Deployment
from repro.crypto.hashes import sha256
from repro.net.messages import BatchPutRequest, GetRequest, PutRequest
from repro.store.resultstore import StoreConfig


def durable_deployment(seed: bytes, **config_kwargs):
    """A durable single-store deployment plus a connected raw client."""
    config_kwargs.setdefault("durable", True)
    d = Deployment(seed=seed, store_config=StoreConfig(**config_kwargs))
    enclave = d.platform.create_enclave("wal-client", b"wal-client-code")
    client = d.store.connect("wal-addr", app_enclave=enclave)
    return d, client


def make_put(label: bytes, app_id: str = "wal-client", size: int = 64) -> PutRequest:
    return PutRequest(
        tag=sha256(b"durable" + label),
        challenge=b"r" * 32,
        wrapped_key=b"k" * 16,
        sealed_result=(b"blob-" + label).ljust(size, b"."),
        app_id=app_id,
    )


def put(client, label: bytes, **kwargs) -> bytes:
    request = make_put(label, **kwargs)
    assert client.call(request).accepted
    return request.tag


def batch_put(client, labels, **kwargs) -> list[bytes]:
    requests = [make_put(label, **kwargs) for label in labels]
    responses = client.call(BatchPutRequest(items=tuple(requests))).items
    assert all(r.accepted for r in responses)
    return [r.tag for r in requests]


def get(client, tag: bytes, app_id: str = "wal-client"):
    return client.call(GetRequest(tag=tag, app_id=app_id))
