"""Shared fixtures for the SPEED reproduction test suite."""

from __future__ import annotations

import pytest

from repro import Deployment, FunctionDescription, TrustedLibrary, TrustedLibraryRegistry


def double_bytes(data: bytes) -> bytes:
    """A trivial deterministic trusted-library function for tests."""
    return data + data


def make_libs() -> TrustedLibraryRegistry:
    libs = TrustedLibraryRegistry()
    libs.register(
        TrustedLibrary("testlib", "1.0").add("bytes double(bytes)", double_bytes)
    )
    return libs


DOUBLE_DESC = FunctionDescription("testlib", "1.0", "bytes double(bytes)")


@pytest.fixture
def deployment() -> Deployment:
    return Deployment(seed=b"test-deployment")


@pytest.fixture
def app(deployment):
    return deployment.create_application("test-app", make_libs())


@pytest.fixture
def dedup_double(app):
    return app.deduplicable(DOUBLE_DESC)
