"""Workload generators: determinism, duplicate fractions, structure."""

import numpy as np
import pytest

from repro.apps.pattern import CompiledRuleset
from repro.errors import SpeedError
from repro.workloads import (
    PLANTED_CONTENTS,
    generate_rules,
    image_stream,
    packet_trace,
    synthetic_image,
    synthetic_text,
    synthetic_webpage,
    text_corpus,
    webpage_stream,
)


def duplicate_fraction(items) -> float:
    keys = [bytes(i) if isinstance(i, (bytes, bytearray)) else
            (i.tobytes() if isinstance(i, np.ndarray) else i.encode()) for i in items]
    return 1.0 - len(set(keys)) / len(keys)


class TestImages:
    def test_deterministic(self):
        assert np.array_equal(synthetic_image(64, seed=1), synthetic_image(64, seed=1))

    def test_seeds_differ(self):
        assert not np.array_equal(synthetic_image(64, seed=1), synthetic_image(64, seed=2))

    def test_uint8_range(self):
        img = synthetic_image(64, seed=3)
        assert img.dtype == np.uint8
        assert img.min() == 0 and img.max() == 255

    def test_too_small_rejected(self):
        with pytest.raises(SpeedError):
            synthetic_image(16)

    def test_stream_duplicate_fraction(self):
        stream = image_stream(count=40, size=32, duplicate_fraction=0.5, seed=1)
        assert len(stream) == 40
        assert duplicate_fraction(stream) == pytest.approx(0.5, abs=0.1)

    def test_stream_rejects_bad_fraction(self):
        with pytest.raises(SpeedError):
            image_stream(10, 32, duplicate_fraction=1.0)


class TestText:
    def test_exact_size(self):
        assert len(synthetic_text(12345, seed=1)) == 12345

    def test_deterministic(self):
        assert synthetic_text(1000, seed=5) == synthetic_text(1000, seed=5)

    def test_ascii_prose(self):
        text = synthetic_text(2000, seed=1)
        text.decode("ascii")
        assert b". " in text

    def test_corpus_duplicates(self):
        corpus = text_corpus(count=30, n_bytes=500, duplicate_fraction=0.4, seed=2)
        assert duplicate_fraction(corpus) == pytest.approx(0.4, abs=0.12)


class TestRules:
    def test_count_and_determinism(self):
        rules = generate_rules(500, seed=3)
        assert len(rules) == 500
        again = generate_rules(500, seed=3)
        assert [r.contents for r in rules] == [r.contents for r in again]
        assert [r.pcre for r in rules] == [r.pcre for r in again]

    def test_all_rules_compile(self):
        CompiledRuleset(generate_rules(500, seed=4))

    def test_mix_of_rule_kinds(self):
        rules = generate_rules(1000, seed=5)
        with_pcre = sum(1 for r in rules if r.pcre)
        content_only = sum(1 for r in rules if r.contents and not r.pcre)
        assert with_pcre > 50
        assert content_only > 400

    def test_unique_ids(self):
        rules = generate_rules(200, seed=6)
        assert len({r.rule_id for r in rules}) == 200


class TestPackets:
    def test_deterministic(self):
        assert packet_trace(20, seed=7) == packet_trace(20, seed=7)

    def test_duplicate_fraction(self):
        trace = packet_trace(100, duplicate_fraction=0.6, seed=8)
        assert duplicate_fraction(trace) == pytest.approx(0.6, abs=0.12)

    def test_malicious_packets_trigger_planted_rules(self):
        trace = packet_trace(
            60, duplicate_fraction=0.0, malicious_fraction=0.5, seed=9
        )
        planted = sum(
            1 for p in trace if any(marker in p for marker in PLANTED_CONTENTS)
        )
        assert planted > 10
        ruleset = CompiledRuleset(generate_rules(100, seed=9))
        alerts = sum(len(ruleset.scan(p)) for p in trace)
        assert alerts > 0

    def test_payload_sizes_vary(self):
        trace = packet_trace(50, payload_size=512, duplicate_fraction=0.0, seed=10)
        sizes = {len(p) for p in trace}
        assert len(sizes) > 10


class TestWebpages:
    def test_deterministic(self):
        assert synthetic_webpage(200, seed=1) == synthetic_webpage(200, seed=1)

    def test_has_markup_structure(self):
        page = synthetic_webpage(300, seed=2)
        assert page.startswith("<title>")
        assert "<p>" in page

    def test_word_budget(self):
        page = synthetic_webpage(500, seed=3)
        words = len(page.split())
        assert 400 <= words <= 700

    def test_stream_duplicates(self):
        stream = webpage_stream(count=20, n_words=100, duplicate_fraction=0.5, seed=4)
        assert duplicate_fraction(stream) == pytest.approx(0.5, abs=0.15)
