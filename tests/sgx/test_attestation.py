"""Local and remote attestation semantics."""

import pytest

from repro.errors import AttestationError, EnclaveError
from repro.sgx.attestation import AttestationService, make_report, verify_report
from repro.sgx.measurement import measure_code
from repro.sgx.platform import SgxPlatform


@pytest.fixture
def service():
    return AttestationService()


@pytest.fixture
def platform(service):
    return SgxPlatform(seed=b"attest-tests", attestation_service=service)


class TestLocalAttestation:
    def test_report_roundtrip(self, platform):
        a = platform.create_enclave("a", b"code-a")
        b = platform.create_enclave("b", b"code-b")
        with a.ecall():
            report = a.create_report(b.measurement, b"hello")
        with b.ecall():
            peer = b.verify_peer_report(report)
        assert peer == a.measurement

    def test_wrong_target_rejected(self, platform):
        a = platform.create_enclave("a", b"code-a")
        b = platform.create_enclave("b", b"code-b")
        c = platform.create_enclave("c", b"code-c")
        with a.ecall():
            report = a.create_report(b.measurement)
        with c.ecall():
            with pytest.raises(AttestationError):
                c.verify_peer_report(report)

    def test_tampered_mac_rejected(self):
        meas = measure_code(b"code")
        report = make_report(b"\x01" * 32, meas, meas.mrenclave, b"data")
        bad = type(report)(
            source=report.source,
            target_mrenclave=report.target_mrenclave,
            report_data=report.report_data,
            mac=bytes(32),
        )
        with pytest.raises(AttestationError):
            verify_report(b"\x01" * 32, meas.mrenclave, bad)

    def test_cross_platform_report_fails(self, service):
        p1 = SgxPlatform(seed=b"p1", attestation_service=service)
        p2 = SgxPlatform(seed=b"p2", attestation_service=service)
        a = p1.create_enclave("a", b"code")
        b = p2.create_enclave("b", b"code")
        with a.ecall():
            report = a.create_report(b.measurement)
        with b.ecall():
            with pytest.raises(AttestationError):
                b.verify_peer_report(report)  # different report-key roots

    def test_oversized_report_data_rejected(self, platform):
        a = platform.create_enclave("a", b"code-a")
        b = platform.create_enclave("b", b"code-b")
        with a.ecall():
            with pytest.raises(AttestationError):
                a.create_report(b.measurement, b"x" * 65)


class TestRemoteAttestation:
    def test_quote_roundtrip(self, platform, service):
        e = platform.create_enclave("a", b"code-a")
        with e.ecall():
            quote = e.create_quote(b"bound-data")
        assert service.verify_quote(quote) == e.measurement

    def test_forged_signature_rejected(self, platform, service):
        e = platform.create_enclave("a", b"code-a")
        with e.ecall():
            quote = e.create_quote()
        forged = type(quote)(
            platform_id=quote.platform_id,
            source=quote.source,
            report_data=quote.report_data,
            signature=bytes(32),
        )
        with pytest.raises(AttestationError):
            service.verify_quote(forged)

    def test_unprovisioned_platform_rejected(self, service):
        lone = SgxPlatform(seed=b"lone")  # no attestation service
        e = lone.create_enclave("a", b"code")
        with e.ecall():
            with pytest.raises(EnclaveError):
                e.create_quote()

    def test_unknown_platform_quote_rejected(self, service):
        other_service = AttestationService()
        p = SgxPlatform(seed=b"p", attestation_service=other_service)
        e = p.create_enclave("a", b"code")
        with e.ecall():
            quote = e.create_quote()
        with pytest.raises(AttestationError):
            service.verify_quote(quote)

    def test_double_provision_rejected(self, service, platform):
        with pytest.raises(AttestationError):
            service.provision(platform.platform_id, b"whatever")


class TestMeasurement:
    def test_same_code_same_measurement(self):
        assert measure_code(b"code") == measure_code(b"code")

    def test_different_code_differs(self):
        assert measure_code(b"code-a").mrenclave != measure_code(b"code-b").mrenclave

    def test_signer_independent_of_code(self):
        assert measure_code(b"a", b"s").mrsigner == measure_code(b"b", b"s").mrsigner

    def test_bad_digest_length_rejected(self):
        from repro.sgx.measurement import Measurement

        with pytest.raises(ValueError):
            Measurement(mrenclave=b"short", mrsigner=b"\x00" * 32)
