"""EPC model: faulting, LRU residency, capacity, paging costs."""

import pytest

from repro.errors import EnclaveMemoryError
from repro.sgx.cost_model import SimClock
from repro.sgx.epc import EpcManager

PAGE = 4096


def make_epc(pages: int, allow_paging=True):
    clock = SimClock()
    return EpcManager(clock, usable_bytes=pages * PAGE, allow_paging=allow_paging), clock


class TestFaulting:
    def test_first_touch_faults(self):
        epc, _ = make_epc(8)
        assert epc.access(1, "heap", 0, 100) == 1
        assert epc.resident_pages == 1

    def test_second_touch_hits(self):
        epc, _ = make_epc(8)
        epc.access(1, "heap", 0, 100)
        assert epc.access(1, "heap", 50, 40) == 0

    def test_range_spans_pages(self):
        epc, _ = make_epc(8)
        assert epc.access(1, "heap", 0, 3 * PAGE) == 3

    def test_page_straddling(self):
        epc, _ = make_epc(8)
        assert epc.access(1, "heap", PAGE - 10, 20) == 2

    def test_zero_bytes_no_fault(self):
        epc, _ = make_epc(8)
        assert epc.access(1, "heap", 0, 0) == 0

    def test_fault_charges_clock(self):
        epc, clock = make_epc(8)
        epc.access(1, "heap", 0, PAGE)
        assert clock.cycles == clock.params.page_fault_cycles

    def test_distinct_regions_distinct_pages(self):
        epc, _ = make_epc(8)
        epc.access(1, "heap", 0, 10)
        assert epc.access(1, "stack", 0, 10) == 1

    def test_distinct_enclaves_distinct_pages(self):
        epc, _ = make_epc(8)
        epc.access(1, "heap", 0, 10)
        assert epc.access(2, "heap", 0, 10) == 1


class TestEviction:
    def test_lru_eviction_order(self):
        epc, _ = make_epc(2)
        epc.access(1, "heap", 0 * PAGE, 1)      # page A
        epc.access(1, "heap", 1 * PAGE, 1)      # page B
        epc.access(1, "heap", 0 * PAGE, 1)      # A becomes MRU
        epc.access(1, "heap", 2 * PAGE, 1)      # evicts B
        assert epc.access(1, "heap", 0 * PAGE, 1) == 0   # A resident
        assert epc.access(1, "heap", 1 * PAGE, 1) == 1   # B was evicted

    def test_eviction_counter(self):
        epc, _ = make_epc(2)
        for i in range(4):
            epc.access(1, "heap", i * PAGE, 1)
        assert epc.eviction_count == 2

    def test_capacity_is_respected(self):
        epc, _ = make_epc(3)
        for i in range(10):
            epc.access(1, "heap", i * PAGE, 1)
        assert epc.resident_pages == 3

    def test_paging_disabled_raises(self):
        epc, _ = make_epc(1, allow_paging=False)
        epc.access(1, "heap", 0, 1)
        with pytest.raises(EnclaveMemoryError):
            epc.access(1, "heap", PAGE, 1)


class TestRelease:
    def test_release_enclave_frees_pages(self):
        epc, _ = make_epc(8)
        epc.access(1, "heap", 0, 2 * PAGE)
        epc.access(2, "heap", 0, PAGE)
        epc.release_enclave(1)
        assert epc.resident_pages == 1

    def test_invalid_size_rejected(self):
        with pytest.raises(EnclaveMemoryError):
            EpcManager(SimClock(), usable_bytes=0)
