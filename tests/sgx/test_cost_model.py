"""Virtual clock: charging, categories, calibration arithmetic."""

import pytest

from repro.errors import EnclaveError
from repro.sgx.cost_model import CostParams, SimClock, Stopwatch


class TestCharging:
    def test_starts_at_zero(self):
        assert SimClock().cycles == 0

    def test_accumulates(self):
        clock = SimClock()
        clock.charge_cycles(100)
        clock.charge_cycles(250)
        assert clock.cycles == 350

    def test_rejects_negative(self):
        with pytest.raises(EnclaveError):
            SimClock().charge_cycles(-1)

    def test_seconds_conversion(self):
        clock = SimClock(CostParams(cpu_freq_hz=1e9))
        clock.charge_seconds(0.5)
        assert clock.cycles == pytest.approx(5e8)
        assert clock.elapsed_seconds() == pytest.approx(0.5)

    def test_categories(self):
        clock = SimClock()
        clock.charge_ecall()
        clock.charge_hash(1000)
        clock.charge_network(100)
        breakdown = clock.breakdown()
        assert set(breakdown) == {"transition", "crypto", "network"}
        assert sum(breakdown.values()) == pytest.approx(clock.cycles)

    def test_snapshot_delta(self):
        clock = SimClock()
        clock.charge_cycles(10)
        mark = clock.snapshot()
        clock.charge_cycles(32)
        assert clock.since(mark) == 32

    def test_reset(self):
        clock = SimClock()
        clock.charge_hash(10)
        clock.reset()
        assert clock.cycles == 0
        assert clock.breakdown() == {}


class TestCalibration:
    def test_hash_is_affine_in_size(self):
        clock = SimClock()
        clock.charge_hash(0)
        fixed = clock.cycles
        clock.reset()
        clock.charge_hash(1000)
        assert clock.cycles == pytest.approx(fixed + 1000 * clock.params.hash_cycles_per_byte)

    def test_transitions_cost_symmetric(self):
        params = CostParams()
        assert params.ecall_cycles == params.ocall_cycles

    def test_compute_native_factor(self):
        clock = SimClock(CostParams(cpu_freq_hz=1e9))
        clock.charge_compute(1.0, native_factor=10.0)
        assert clock.elapsed_seconds() == pytest.approx(0.1)

    def test_compute_rejects_bad_factor(self):
        with pytest.raises(EnclaveError):
            SimClock().charge_compute(1.0, native_factor=0)

    def test_page_fault_batch(self):
        clock = SimClock()
        clock.charge_page_fault(3)
        assert clock.cycles == 3 * clock.params.page_fault_cycles


class TestStopwatch:
    def test_captures_both_clocks(self):
        clock = SimClock()
        with Stopwatch(clock) as watch:
            clock.charge_seconds(0.25)
        assert watch.sim_seconds == pytest.approx(0.25)
        assert watch.wall_seconds >= 0
