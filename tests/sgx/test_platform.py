"""Platform-level behaviour: identity, registry, configuration."""

import pytest

from repro.sgx.attestation import AttestationService
from repro.sgx.cost_model import CostParams
from repro.sgx.platform import SgxPlatform


class TestPlatform:
    def test_platform_id_depends_on_name_and_seed(self):
        a = SgxPlatform(seed=b"s", name="m1")
        b = SgxPlatform(seed=b"s", name="m2")
        c = SgxPlatform(seed=b"t", name="m1")
        assert a.platform_id != b.platform_id
        assert a.platform_id != c.platform_id

    def test_same_seed_same_platform(self):
        a = SgxPlatform(seed=b"s", name="m")
        b = SgxPlatform(seed=b"s", name="m")
        assert a.platform_id == b.platform_id
        assert a.seal_fabric_key == b.seal_fabric_key

    def test_enclave_registry(self):
        platform = SgxPlatform(seed=b"reg")
        e1 = platform.create_enclave("a", b"code-a")
        e2 = platform.create_enclave("b", b"code-b")
        assert set(platform.enclaves) == {e1, e2}
        platform.destroy_enclave(e1)
        assert set(platform.enclaves) == {e2}

    def test_enclave_ids_unique_even_after_destroy(self):
        platform = SgxPlatform(seed=b"ids")
        e1 = platform.create_enclave("a", b"code")
        platform.destroy_enclave(e1)
        e2 = platform.create_enclave("b", b"code")
        assert e2.enclave_id != e1.enclave_id

    def test_custom_cost_params_respected(self):
        params = CostParams(cpu_freq_hz=1e9, ecall_cycles=5)
        platform = SgxPlatform(seed=b"cp", params=params)
        enclave = platform.create_enclave("a", b"code")
        before = platform.clock.cycles
        with enclave.ecall():
            pass
        assert platform.clock.cycles - before == 10  # 5 in + 5 out

    def test_enclave_build_charges_measurement_cost(self):
        platform = SgxPlatform(seed=b"build")
        before = platform.clock.cycles
        platform.create_enclave("a", b"c" * 10000)
        assert platform.clock.cycles > before

    def test_drbg_streams_differ_per_enclave(self):
        platform = SgxPlatform(seed=b"drbg")
        e1 = platform.create_enclave("a", b"code")
        e2 = platform.create_enclave("b", b"code")
        with e1.ecall():
            r1 = e1.read_rand(16)
        with e2.ecall():
            r2 = e2.read_rand(16)
        assert r1 != r2

    def test_shared_attestation_service_across_platforms(self):
        service = AttestationService()
        p1 = SgxPlatform(seed=b"p1", name="m1", attestation_service=service)
        p2 = SgxPlatform(seed=b"p2", name="m2", attestation_service=service)
        e1 = p1.create_enclave("a", b"code")
        with e1.ecall():
            quote = e1.create_quote()
        # Verifiable from anywhere in the deployment.
        assert service.verify_quote(quote) == e1.measurement
        assert p2.platform_id != p1.platform_id
