"""Enclave semantics: transition nesting, isolation, sealing, lifecycle."""

import pytest

from repro.errors import EnclaveError, SealingError
from repro.sgx.platform import SgxPlatform
from repro.sgx.sealing import SealPolicy


@pytest.fixture
def platform():
    return SgxPlatform(seed=b"enclave-tests")


@pytest.fixture
def enclave(platform):
    return platform.create_enclave("app", b"code-v1")


class TestTransitions:
    def test_starts_outside(self, enclave):
        assert not enclave.inside

    def test_ecall_enters(self, enclave):
        with enclave.ecall("f"):
            assert enclave.inside
        assert not enclave.inside

    def test_nested_ecall_rejected(self, enclave):
        with enclave.ecall("f"):
            with pytest.raises(EnclaveError):
                enclave.ecall("g").__enter__()

    def test_ocall_outside_rejected(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.ocall("o").__enter__()

    def test_ocall_within_ecall(self, enclave):
        with enclave.ecall("f"):
            with enclave.ocall("o"):
                assert not enclave.inside
            assert enclave.inside

    def test_reentrant_ecall_from_ocall(self, enclave):
        # OCALL -> ECALL re-entry is legal in SGX.
        with enclave.ecall("f"):
            with enclave.ocall("o"):
                with enclave.ecall("g"):
                    assert enclave.inside

    def test_transition_counts(self, enclave):
        with enclave.ecall("f"):
            with enclave.ocall("o"):
                pass
        assert enclave.ecall_count == 1
        assert enclave.ocall_count == 1

    def test_transitions_charge_clock(self, platform, enclave):
        before = platform.clock.snapshot()
        with enclave.ecall("f", in_bytes=100, out_bytes=50):
            pass
        expected = 2 * platform.clock.params.ecall_cycles + 150 * platform.clock.params.marshal_cycles_per_byte
        assert platform.clock.since(before) == pytest.approx(expected)


class TestIsolation:
    def test_memory_unreachable_from_outside(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.touch("heap", 0, 64)

    def test_memory_reachable_inside(self, enclave):
        with enclave.ecall("f"):
            assert enclave.touch("heap", 0, 64) >= 0

    def test_read_rand_requires_inside(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.read_rand(16)

    def test_read_rand_deterministic_per_seed(self, platform):
        e1 = SgxPlatform(seed=b"s").create_enclave("a", b"c")
        e2 = SgxPlatform(seed=b"s").create_enclave("a", b"c")
        with e1.ecall():
            r1 = e1.read_rand(16)
        with e2.ecall():
            r2 = e2.read_rand(16)
        assert r1 == r2


class TestSealing:
    def test_roundtrip_mrenclave(self, enclave):
        with enclave.ecall():
            blob = enclave.seal(b"secret")
            assert enclave.unseal(blob) == b"secret"

    def test_other_enclave_cannot_unseal_mrenclave(self, platform, enclave):
        other = platform.create_enclave("other", b"different-code")
        with enclave.ecall():
            blob = enclave.seal(b"secret", SealPolicy.MRENCLAVE)
        with other.ecall():
            with pytest.raises(SealingError):
                other.unseal(blob)

    def test_same_signer_can_unseal_mrsigner(self, platform, enclave):
        sibling = platform.create_enclave("v2", b"code-v2")  # same default signer
        with enclave.ecall():
            blob = enclave.seal(b"secret", SealPolicy.MRSIGNER)
        with sibling.ecall():
            assert sibling.unseal(blob) == b"secret"

    def test_different_signer_cannot_unseal_mrsigner(self, platform, enclave):
        foreign = platform.create_enclave("foreign", b"code-v1", signer=b"other-vendor")
        with enclave.ecall():
            blob = enclave.seal(b"secret", SealPolicy.MRSIGNER)
        with foreign.ecall():
            with pytest.raises(SealingError):
                foreign.unseal(blob)

    def test_seal_requires_inside(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.seal(b"x")


class TestLifecycle:
    def test_destroyed_enclave_rejects_calls(self, platform, enclave):
        platform.destroy_enclave(enclave)
        with pytest.raises(EnclaveError):
            enclave.ecall().__enter__()

    def test_destroy_frees_epc(self, platform, enclave):
        with enclave.ecall():
            enclave.touch("heap", 0, 4096 * 4)
        assert platform.epc.resident_pages > 0
        platform.destroy_enclave(enclave)
        assert platform.epc.resident_pages == 0

    def test_destroy_with_live_call_rejected(self, platform, enclave):
        with enclave.ecall():
            with pytest.raises(EnclaveError):
                enclave.destroy()

    def test_foreign_enclave_rejected(self, platform):
        other_platform = SgxPlatform(seed=b"other")
        foreign = other_platform.create_enclave("x", b"y")
        with pytest.raises(EnclaveError):
            platform.destroy_enclave(foreign)
