"""Sealing module unit tests (policy key derivation, blob integrity)."""

import pytest

from repro.errors import SealingError
from repro.sgx.measurement import measure_code
from repro.sgx.sealing import (
    SealPolicy,
    derive_seal_key,
    seal_data,
    unseal_data,
)

FABRIC = b"\x42" * 32
MEAS = measure_code(b"enclave-code", signer=b"vendor")
IV = b"\x07" * 12


class TestKeyDerivation:
    def test_policies_derive_distinct_keys(self):
        k_encl = derive_seal_key(FABRIC, MEAS, SealPolicy.MRENCLAVE)
        k_sign = derive_seal_key(FABRIC, MEAS, SealPolicy.MRSIGNER)
        assert k_encl != k_sign
        assert len(k_encl) == len(k_sign) == 16

    def test_mrenclave_key_tracks_code(self):
        other = measure_code(b"different-code", signer=b"vendor")
        assert derive_seal_key(FABRIC, MEAS, SealPolicy.MRENCLAVE) != derive_seal_key(
            FABRIC, other, SealPolicy.MRENCLAVE
        )

    def test_mrsigner_key_ignores_code(self):
        other = measure_code(b"different-code", signer=b"vendor")
        assert derive_seal_key(FABRIC, MEAS, SealPolicy.MRSIGNER) == derive_seal_key(
            FABRIC, other, SealPolicy.MRSIGNER
        )

    def test_fabric_key_matters(self):
        assert derive_seal_key(FABRIC, MEAS, SealPolicy.MRENCLAVE) != derive_seal_key(
            b"\x43" * 32, MEAS, SealPolicy.MRENCLAVE
        )


class TestSealUnseal:
    def test_roundtrip(self):
        blob = seal_data(FABRIC, MEAS, b"secret", SealPolicy.MRENCLAVE, IV)
        assert unseal_data(FABRIC, MEAS, blob) == b"secret"

    def test_policy_recorded_in_blob(self):
        blob = seal_data(FABRIC, MEAS, b"s", SealPolicy.MRSIGNER, IV)
        assert blob.policy is SealPolicy.MRSIGNER

    def test_cross_policy_confusion_rejected(self):
        # An attacker relabeling an MRENCLAVE blob as MRSIGNER changes
        # the derived key AND the AAD, so unsealing fails.
        blob = seal_data(FABRIC, MEAS, b"s", SealPolicy.MRENCLAVE, IV)
        forged = type(blob)(policy=SealPolicy.MRSIGNER, payload=blob.payload)
        with pytest.raises(SealingError):
            unseal_data(FABRIC, MEAS, forged)

    def test_bitflip_rejected(self):
        blob = seal_data(FABRIC, MEAS, b"secret", SealPolicy.MRENCLAVE, IV)
        payload = blob.payload[:-1] + bytes([blob.payload[-1] ^ 1])
        with pytest.raises(SealingError):
            unseal_data(FABRIC, MEAS, type(blob)(policy=blob.policy, payload=payload))

    def test_empty_payload_sealable(self):
        blob = seal_data(FABRIC, MEAS, b"", SealPolicy.MRENCLAVE, IV)
        assert unseal_data(FABRIC, MEAS, blob) == b""
