"""The invariant oracles, unit-tested against synthetic states."""

from repro.core.stats import RuntimeStats
from repro.simtest.invariants import (
    check_confidentiality,
    check_conservation,
    check_durability,
)


class FakeCluster:
    def __init__(self, held):
        self.held = held

    def holders_of(self, tag):
        return ["shard-0"] if tag in self.held else []


class TestDurability:
    def test_held_tags_pass(self):
        cluster = FakeCluster({b"t1", b"t2"})
        assert check_durability({b"t1", b"t2"}, set(), cluster) == []

    def test_lost_tag_is_a_violation_with_repro(self):
        cluster = FakeCluster({b"t1"})
        violations = check_durability(
            {b"t1", b"t2"}, set(), cluster, repro="python -m repro.simtest --seed 7"
        )
        assert len(violations) == 1
        assert violations[0].invariant == "durability"
        assert "--seed 7" in str(violations[0])

    def test_corrupted_tags_are_excluded(self):
        cluster = FakeCluster(set())
        assert check_durability({b"t1"}, {b"t1"}, cluster) == []


class TestConfidentiality:
    def test_clean_wire_passes(self):
        secrets = {"result[0]": b"\xaa" * 32}
        assert check_confidentiality(secrets, [b"ciphertext" * 4]) == []

    def test_leaked_secret_is_reported_once(self):
        secret = b"\xaa" * 32
        payloads = [b"x" + secret + b"y", secret]  # two sightings
        violations = check_confidentiality({"result[0]": secret}, payloads)
        assert len(violations) == 1
        assert violations[0].invariant == "confidentiality"


class TestConservation:
    def test_balanced_counts_pass(self):
        stats = RuntimeStats(calls=10, hits=4, misses=5, degraded=1)
        assert check_conservation(stats) == []

    def test_imbalance_is_a_violation(self):
        stats = RuntimeStats(calls=10, hits=4, misses=5, degraded=0)
        violations = check_conservation(stats)
        assert len(violations) == 1
        assert violations[0].invariant == "conservation"

    def test_degraded_is_mutually_exclusive_in_record_call(self):
        from repro.core.stats import CallRecord
        stats = RuntimeStats()
        record = CallRecord(
            description="f", hit=False, input_bytes=1, result_bytes=1,
            wall_seconds=0.0, sim_seconds=0.0, degraded=True,
        )
        stats.record_call(record)
        assert (stats.calls, stats.hits, stats.misses, stats.degraded) == (1, 0, 0, 1)
