"""FaultPlan: stateless decisions, partitions, slow links."""

from repro.net.transport import DELIVER, FaultDecision, FaultInjector
from repro.simtest.schedule import FaultPlan


class TestStatelessDecisions:
    def test_same_coordinates_same_decision(self):
        plan = FaultPlan(seed=5, drop_rate=0.3, duplicate_rate=0.3,
                         delay_rate=0.3, corrupt_rate=0.3)
        for index in range(50):
            first = plan.decide("a", "b", index, 100)
            again = plan.decide("a", "b", index, 100)
            assert first == again

    def test_decisions_independent_of_evaluation_order(self):
        plan = FaultPlan(seed=5, drop_rate=0.5)
        forward = [plan.decide("a", "b", i, 1) for i in range(20)]
        fresh = FaultPlan(seed=5, drop_rate=0.5)
        backward = [fresh.decide("a", "b", i, 1) for i in reversed(range(20))]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, drop_rate=0.5)
        b = FaultPlan(seed=2, drop_rate=0.5)
        decisions_a = [a.decide("x", "y", i, 1).drop for i in range(64)]
        decisions_b = [b.decide("x", "y", i, 1).drop for i in range(64)]
        assert decisions_a != decisions_b

    def test_zero_rates_always_deliver(self):
        plan = FaultPlan(seed=9)
        for index in range(100):
            assert plan.decide("a", "b", index, 10) is DELIVER

    def test_rates_are_roughly_honoured(self):
        plan = FaultPlan(seed=3, drop_rate=0.5)
        drops = sum(plan.decide("a", "b", i, 1).drop for i in range(400))
        assert 120 <= drops <= 280  # ~200 expected, generous bounds

    def test_delay_bounded_by_max_delay(self):
        plan = FaultPlan(seed=4, delay_rate=1.0, max_delay=3)
        for index in range(100):
            decision = plan.decide("a", "b", index, 1)
            assert 1 <= decision.delay <= 3


class TestTopologyFaults:
    def test_blocked_edge_drops_everything(self):
        plan = FaultPlan(seed=1)
        plan.block("a", "b")
        assert plan.decide("a", "b", 0, 1).drop
        assert not plan.decide("b", "a", 0, 1).drop  # directional

    def test_block_address_is_bidirectional(self):
        plan = FaultPlan(seed=1)
        plan.block_address("s", ["a", "b"])
        for source, dest in (("s", "a"), ("a", "s"), ("s", "b"), ("b", "s")):
            assert plan.decide(source, dest, 0, 1).drop
        assert not plan.decide("a", "b", 0, 1).drop

    def test_slow_address_delays_both_directions(self):
        plan = FaultPlan(seed=1)
        plan.set_slow("s", 2)
        assert plan.decide("a", "s", 0, 1).delay == 2
        assert plan.decide("s", "a", 0, 1).delay == 2
        assert plan.decide("a", "b", 0, 1) is DELIVER

    def test_heal_clears_partitions_and_slow(self):
        plan = FaultPlan(seed=1)
        plan.block("a", "b")
        plan.set_slow("s", 3)
        plan.heal()
        assert plan.decide("a", "b", 0, 1) is DELIVER
        assert plan.decide("a", "s", 0, 1) is DELIVER

    def test_set_slow_zero_clears_one_address(self):
        plan = FaultPlan(seed=1)
        plan.set_slow("s", 2)
        plan.set_slow("s", 0)
        assert plan.decide("a", "s", 0, 1) is DELIVER


class TestInjectorIntegration:
    def test_plan_plugs_into_injector(self):
        injector = FaultInjector(plan=FaultPlan(seed=1, drop_rate=1.0))
        assert injector.decide(b"x", source="a", dest="b").drop

    def test_plan_merges_with_index_rules(self):
        plan = FaultPlan(seed=1, delay_rate=1.0, max_delay=1)
        injector = FaultInjector(corrupt_indices={0}, plan=plan)
        decision = injector.decide(b"x", source="a", dest="b")
        assert decision == FaultDecision(corrupt=True, delay=1)
