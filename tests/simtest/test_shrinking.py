"""Shrinking search, exercised with synthetic oracles (no full runs)."""


from types import SimpleNamespace

from repro.simtest import SimConfig, shrink


def oracle(predicate):
    """A fake run callable: fails (ok=False) when predicate holds."""
    def run(config):
        return SimpleNamespace(ok=not predicate(config))
    return run


class TestShrink:
    def test_passing_config_is_returned_unchanged(self):
        config = SimConfig(seed=1, steps=40)
        smaller, runs = shrink(config, run=oracle(lambda c: False))
        assert smaller == config
        assert runs == 1  # just the initial check

    def test_step_count_descends_to_minimum(self):
        # Failure needs at least 12 steps, nothing else.
        config = SimConfig(seed=1, steps=40)
        smaller, _ = shrink(config, run=oracle(lambda c: c.steps >= 12))
        assert smaller.steps == 12

    def test_irrelevant_fault_classes_are_disabled(self):
        config = SimConfig(seed=1, steps=40)
        smaller, _ = shrink(
            config, run=oracle(lambda c: c.steps >= 5 and c.drop_rate > 0)
        )
        assert smaller.drop_rate > 0          # load-bearing: kept
        assert smaller.corruption_ops is False  # irrelevant: dropped
        assert smaller.partition_ops is False
        assert smaller.crash_ops is False
        assert smaller.steps == 5

    def test_needed_fault_class_is_preserved(self):
        config = SimConfig(seed=1, steps=20)
        smaller, _ = shrink(
            config, run=oracle(lambda c: c.corruption_ops and c.steps >= 3)
        )
        assert smaller.corruption_ops is True
        assert smaller.steps == 3

    def test_run_budget_is_respected(self):
        calls = 0

        def counting_run(config):
            nonlocal calls
            calls += 1
            return SimpleNamespace(ok=False)

        config = SimConfig(seed=1, steps=1024)
        shrink(config, run=counting_run, max_runs=5)
        assert calls <= 6  # initial check + at most max_runs - 1 more

    def test_shrunk_config_keeps_seed_and_repro_string(self):
        config = SimConfig(seed=7, steps=16)
        smaller, _ = shrink(config, run=oracle(lambda c: c.steps >= 2))
        assert isinstance(smaller, SimConfig)
        assert smaller.seed == config.seed
        assert smaller.steps == 2
        assert "--seed 7" in smaller.repro_string()
