"""Scenario runner: replayability, invariants, CLI."""

import pytest

from repro.simtest import SimConfig, run_scenario
from repro.simtest.__main__ import main

# Small scenarios keep the tier-1 suite fast; the slow_sim sweep below
# covers volume.
FAST = dict(steps=25, shards=3)


class TestReplayability:
    def test_same_seed_replays_byte_identical_trace(self):
        config = SimConfig(seed=11, **FAST)
        first = run_scenario(config)
        second = run_scenario(config)
        assert first.trace == second.trace
        assert first.digest == second.digest
        assert first.counters == second.counters

    def test_different_seeds_diverge(self):
        a = run_scenario(SimConfig(seed=1, **FAST))
        b = run_scenario(SimConfig(seed=2, **FAST))
        assert a.digest != b.digest

    def test_repro_string_round_trips_through_config(self):
        config = SimConfig(seed=42, steps=10, shards=2)
        assert "--seed 42" in config.repro_string()
        assert "--steps 10" in config.repro_string()
        assert "--shards 2" in config.repro_string()


class TestInvariants:
    @pytest.mark.parametrize("seed", [3, 9, 17])
    def test_fixed_seeds_uphold_all_invariants(self, seed):
        result = run_scenario(SimConfig(seed=seed, **FAST))
        assert result.ok, "\n".join(str(v) for v in result.violations)

    def test_conservation_counts_add_up(self):
        result = run_scenario(SimConfig(seed=9, **FAST))
        c = result.counters
        assert (
            c["runtime.hits"] + c["runtime.misses"] + c["runtime.degraded_calls"]
            == c["runtime.calls"]
        )

    def test_faults_actually_fired(self):
        # Sanity: the schedule is live, not a no-op pass-through.
        result = run_scenario(SimConfig(seed=9, **FAST))
        c = result.counters
        assert c["net.dropped"] + c["net.corrupted"] + c["net.delayed"] > 0

    def test_corruption_ops_are_survivable(self):
        # A corruption-heavy walk: tampered blobs/metadata must be
        # rejected and recomputed, never returned.
        config = SimConfig(seed=13, steps=30, shards=2,
                           crash_ops=False, partition_ops=False)
        result = run_scenario(config)
        assert result.ok, "\n".join(str(v) for v in result.violations)


class TestPipelined:
    """The same chaos walk driven through the pipelined engine
    (depth 8, coalescing on) — results, conservation, and the
    coalescing invariant must hold under every fault schedule."""

    @pytest.mark.parametrize("seed", [3, 9, 17])
    def test_fixed_seeds_uphold_all_invariants(self, seed):
        result = run_scenario(SimConfig(seed=seed, pipeline=True, **FAST))
        assert result.ok, "\n".join(str(v) for v in result.violations)

    def test_pipelined_runs_replay_byte_identical(self):
        config = SimConfig(seed=11, pipeline=True, **FAST)
        first = run_scenario(config)
        second = run_scenario(config)
        assert first.digest == second.digest

    def test_coalescing_actually_fires_somewhere(self):
        # The walk's small input pool makes in-batch duplicates likely;
        # across a handful of seeds at least one batch must coalesce,
        # otherwise the invariant never exercises its subject.
        total = 0
        for seed in range(6):
            result = run_scenario(
                SimConfig(seed=seed, pipeline=True, **FAST)
            )
            total += result.counters.get("runtime.coalesced_hits", 0)
        assert total > 0

    def test_conservation_holds_with_coalesced_hits(self):
        result = run_scenario(SimConfig(seed=9, pipeline=True, **FAST))
        c = result.counters
        assert (
            c["runtime.hits"] + c["runtime.misses"] + c["runtime.degraded_calls"]
            == c["runtime.calls"]
        )

    def test_repro_string_carries_the_pipeline_flag(self):
        config = SimConfig(seed=5, pipeline=True)
        assert "--pipeline" in config.repro_string()


class TestAdaptive:
    """The chaos walk with the AIMD depth controller sizing the engine
    window — invariant 8 (adaptive runs are byte-identical to a depth-1
    replay) plus replayability of the controller's decision log."""

    @pytest.mark.parametrize("seed", [3, 9, 17])
    def test_fixed_seeds_uphold_all_invariants(self, seed):
        result = run_scenario(SimConfig(seed=seed, adaptive=True, **FAST))
        assert result.ok, "\n".join(str(v) for v in result.violations)

    def test_adaptive_runs_replay_byte_identical(self):
        # The digested trace includes the controller's decision log, so
        # a matching digest pins both results and depth decisions.
        config = SimConfig(seed=11, adaptive=True, **FAST)
        first = run_scenario(config)
        second = run_scenario(config)
        assert first.digest == second.digest
        assert first.values == second.values

    def test_controller_decisions_join_the_trace(self):
        result = run_scenario(SimConfig(seed=9, adaptive=True, **FAST))
        adaptive_lines = [l for l in result.trace if l.startswith("phase=adaptive")]
        assert len(adaptive_lines) == 1
        assert "decisions=" in adaptive_lines[0]
        assert "log=" in adaptive_lines[0]
        assert result.counters.get("engine.depth_decisions", 0) > 0

    def test_adaptive_values_match_depth_one_replay(self):
        # Invariant 8, checked from the outside: the runner already
        # replays internally; here the depth-1 stream is rebuilt
        # independently and compared call-for-call.
        config = SimConfig(seed=17, adaptive=True, **FAST)
        adaptive = run_scenario(config)
        reference = run_scenario(SimConfig(
            seed=17, pipeline=True, pipeline_depth=1, **FAST
        ))
        assert adaptive.values == reference.values

    def test_adaptive_implies_pipeline_in_repro_string(self):
        config = SimConfig(seed=5, adaptive=True)
        assert "--adaptive" in config.repro_string()

    def test_adaptive_composes_with_migration(self):
        # Adaptive depth + an open dual-ownership window: invariant 8
        # and the placement invariants must hold together.  (The walk's
        # short rounds keep raw depth below the migration cap, so the
        # cap counter itself is pinned by the engine unit tests.)
        for seed in (3, 9, 17):
            result = run_scenario(SimConfig(
                seed=seed, adaptive=True, migrate=True, steps=30, shards=3,
            ))
            assert result.ok, "\n".join(str(v) for v in result.violations)
            assert result.counters.get("engine.depth_decisions", 0) > 0


class TestPlannedMigration:
    """The ``--migrate`` walk's planned-transition branch: one window
    batching 2 joins + 1 leave + 1 reweight, opened mid-chaos."""

    def test_plan_branch_fires_and_holds_invariants(self):
        # Seeds whose chaos walk opens a planned multi-change window;
        # the settle phase drains it with every invariant green.
        for seed in (7, 8, 9):
            result = run_scenario(SimConfig(
                seed=seed, migrate=True, steps=30, shards=3,
            ))
            assert result.ok, "\n".join(str(v) for v in result.violations)
            plan_lines = [
                line for line in result.trace
                if "op=mig_open kind=plan" in line
            ]
            assert plan_lines, f"seed {seed} no longer opens a plan"
            assert "label=+" in plan_lines[0]
            assert "-shard-" in plan_lines[0]  # a leave rode along
            assert "~shard-" in plan_lines[0]  # and a reweight

    def test_plan_survives_participant_power_fail(self):
        # Seed 8 power-fails a joiner mid-plan, seed 9 the leaver; the
        # window still drains and the single-owner invariant holds.
        for seed in (8, 9):
            result = run_scenario(SimConfig(
                seed=seed, migrate=True, steps=30, shards=3,
            ))
            assert result.ok, "\n".join(str(v) for v in result.violations)
            assert any("op=mig_powerfail" in line for line in result.trace)
            assert any(
                "migration=plan finished" in line for line in result.trace
            )


@pytest.mark.slow_sim
class TestSweep:
    def test_fifty_generated_schedules_pass(self):
        failures = []
        for seed in range(50):
            result = run_scenario(SimConfig(seed=seed))
            if not result.ok:
                failures.append(result)
        assert not failures, "\n".join(
            violation_line
            for result in failures
            for violation_line in (result.repro, *map(str, result.violations))
        )

    def test_fifty_pipelined_schedules_pass(self):
        failures = []
        for seed in range(50):
            result = run_scenario(SimConfig(seed=seed, pipeline=True))
            if not result.ok:
                failures.append(result)
        assert not failures, "\n".join(
            violation_line
            for result in failures
            for violation_line in (result.repro, *map(str, result.violations))
        )

    def test_fifty_adaptive_schedules_pass(self):
        failures = []
        for seed in range(50):
            result = run_scenario(SimConfig(seed=seed, adaptive=True))
            if not result.ok:
                failures.append(result)
        assert not failures, "\n".join(
            violation_line
            for result in failures
            for violation_line in (result.repro, *map(str, result.violations))
        )


class TestCli:
    def test_single_seed_exits_zero_and_prints_digest(self, capsys):
        code = main(["--seed", "3", "--steps", "12", "--shards", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "digest=" in out and "OK" in out

    def test_cli_output_is_deterministic(self, capsys):
        main(["--seed", "3", "--steps", "12", "--shards", "2"])
        first = capsys.readouterr().out
        main(["--seed", "3", "--steps", "12", "--shards", "2"])
        second = capsys.readouterr().out
        assert first == second

    def test_trace_flag_prints_event_lines(self, capsys):
        main(["--seed", "3", "--steps", "12", "--shards", "2", "--trace"])
        out = capsys.readouterr().out
        assert "op=" in out and "phase=settle" in out

    def test_pipeline_flag_exits_zero(self, capsys):
        code = main(["--seed", "3", "--steps", "12", "--shards", "2",
                     "--pipeline"])
        out = capsys.readouterr().out
        assert code == 0
        assert "digest=" in out and "OK" in out

    def test_adaptive_flag_exits_zero(self, capsys):
        code = main(["--seed", "3", "--steps", "12", "--shards", "2",
                     "--adaptive"])
        out = capsys.readouterr().out
        assert code == 0
        assert "digest=" in out and "OK" in out
