"""ResultStore batch handlers: one ECALL serves the whole batch."""

from repro import Deployment
from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashes import sha256
from repro.net.messages import GetRequest, PutRequest
from repro.store.quota import QuotaPolicy
from repro.store.resultstore import StoreConfig


def connect(deployment: Deployment, name: str = "batch-client"):
    enclave = deployment.platform.create_enclave(name, name.encode() + b"-code")
    return deployment.store.connect(name + "-addr", app_enclave=enclave)


def make_puts(count: int, label: bytes, app_id: str = "batch") -> list[PutRequest]:
    drbg = HmacDrbg(label, b"store-batch")
    return [
        PutRequest(
            tag=sha256(label + i.to_bytes(4, "big")),
            challenge=drbg.generate(32),
            wrapped_key=drbg.generate(16),
            sealed_result=drbg.generate(256),
            app_id=app_id,
        )
        for i in range(count)
    ]


class TestBatchGet:
    def test_found_flags_follow_item_order(self):
        d = Deployment(seed=b"sb-get")
        client = connect(d)
        puts = make_puts(3, b"sb-get")
        client.call_batch(puts)
        requests = [GetRequest(tag=puts[0].tag, app_id="batch"),
                    GetRequest(tag=b"\x00" * 32, app_id="batch"),
                    GetRequest(tag=puts[2].tag, app_id="batch")]
        responses = client.call_batch(requests)
        assert [r.found for r in responses] == [True, False, True]
        found = responses[0]
        assert found.challenge == puts[0].challenge
        assert found.sealed_result == puts[0].sealed_result

    def test_one_ecall_and_n_dictionary_probes(self):
        d = Deployment(seed=b"sb-ecall")
        client = connect(d)
        puts = make_puts(4, b"sb-ecall")
        client.call_batch(puts)
        gets_before = d.store.stats.gets
        ecalls_before = d.store.enclave.ecall_count
        client.call_batch([GetRequest(tag=p.tag, app_id="batch") for p in puts])
        assert d.store.stats.gets - gets_before == 4
        assert d.store.enclave.ecall_count - ecalls_before == 1


class TestBatchPut:
    def test_all_accepted(self):
        d = Deployment(seed=b"sb-put")
        client = connect(d)
        responses = client.call_batch(make_puts(5, b"sb-put"))
        assert all(r.accepted for r in responses)
        assert d.store.stats.puts == 5

    def test_quota_rejection_is_per_item(self):
        """A quota breach mid-batch must reject that item, not poison
        the whole batch with an error."""
        d = Deployment(
            seed=b"sb-quota",
            store_config=StoreConfig(quota=QuotaPolicy(max_entries_per_app=2)),
        )
        client = connect(d)
        responses = client.call_batch(make_puts(4, b"sb-quota"))
        assert [r.accepted for r in responses] == [True, True, False, False]
        assert all(r.reason for r in responses if not r.accepted)

    def test_batched_entries_served_to_other_clients(self):
        d = Deployment(seed=b"sb-share")
        writer = connect(d, "writer")
        reader = connect(d, "reader")
        puts = make_puts(3, b"sb-share")
        writer.call_batch(puts)
        response = reader.call(GetRequest(tag=puts[1].tag, app_id="reader"))
        assert response.found
        assert response.sealed_result == puts[1].sealed_result
