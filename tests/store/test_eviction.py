"""Eviction policies select the right victims."""

import pytest

from repro.errors import StoreError
from repro.store.eviction import FifoPolicy, LfuPolicy, LruPolicy, make_policy
from repro.store.metadata import MetadataEntry, blob_digest


def entry(tag, hits=0, insert_seq=0, last_access_seq=0):
    e = MetadataEntry(
        tag=tag, challenge=b"r" * 32, wrapped_key=b"k" * 16, blob_ref=0,
        blob_digest=blob_digest(b""), size=1, app_id="a",
        hits=hits, insert_seq=insert_seq, last_access_seq=last_access_seq,
    )
    return e


class TestPolicies:
    def test_lru_picks_least_recent(self):
        entries = [entry(b"a", last_access_seq=5), entry(b"b", last_access_seq=2),
                   entry(b"c", last_access_seq=9)]
        assert LruPolicy().select_victim(entries).tag == b"b"

    def test_lfu_picks_least_hit(self):
        entries = [entry(b"a", hits=3), entry(b"b", hits=1), entry(b"c", hits=7)]
        assert LfuPolicy().select_victim(entries).tag == b"b"

    def test_lfu_ties_break_by_age(self):
        entries = [entry(b"a", hits=1, insert_seq=10), entry(b"b", hits=1, insert_seq=3)]
        assert LfuPolicy().select_victim(entries).tag == b"b"

    def test_fifo_picks_oldest(self):
        entries = [entry(b"a", insert_seq=4), entry(b"b", insert_seq=1)]
        assert FifoPolicy().select_victim(entries).tag == b"b"

    @pytest.mark.parametrize("policy", [LruPolicy(), LfuPolicy(), FifoPolicy()])
    def test_empty_rejected(self, policy):
        with pytest.raises(StoreError):
            policy.select_victim([])


class TestFactory:
    @pytest.mark.parametrize("name,cls", [("lru", LruPolicy), ("lfu", LfuPolicy),
                                          ("fifo", FifoPolicy)])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_policy(self):
        with pytest.raises(StoreError):
            make_policy("magic")
