"""Eviction policies select the right victims."""

import pytest

from repro.errors import StoreError
from repro.store.eviction import FifoPolicy, LfuPolicy, LruPolicy, make_policy
from repro.store.metadata import MetadataEntry, blob_digest


def entry(tag, hits=0, insert_seq=0, last_access_seq=0):
    e = MetadataEntry(
        tag=tag, challenge=b"r" * 32, wrapped_key=b"k" * 16, blob_ref=0,
        blob_digest=blob_digest(b""), size=1, app_id="a",
        hits=hits, insert_seq=insert_seq, last_access_seq=last_access_seq,
    )
    return e


class TestPolicies:
    def test_lru_picks_least_recent(self):
        entries = [entry(b"a", last_access_seq=5), entry(b"b", last_access_seq=2),
                   entry(b"c", last_access_seq=9)]
        assert LruPolicy().select_victim(entries).tag == b"b"

    def test_lfu_picks_least_hit(self):
        entries = [entry(b"a", hits=3), entry(b"b", hits=1), entry(b"c", hits=7)]
        assert LfuPolicy().select_victim(entries).tag == b"b"

    def test_lfu_ties_break_by_age(self):
        entries = [entry(b"a", hits=1, insert_seq=10), entry(b"b", hits=1, insert_seq=3)]
        assert LfuPolicy().select_victim(entries).tag == b"b"

    def test_fifo_picks_oldest(self):
        entries = [entry(b"a", insert_seq=4), entry(b"b", insert_seq=1)]
        assert FifoPolicy().select_victim(entries).tag == b"b"

    @pytest.mark.parametrize("policy", [LruPolicy(), LfuPolicy(), FifoPolicy()])
    def test_empty_rejected(self, policy):
        with pytest.raises(StoreError):
            policy.select_victim([])


class TestFactory:
    @pytest.mark.parametrize("name,cls", [("lru", LruPolicy), ("lfu", LfuPolicy),
                                          ("fifo", FifoPolicy)])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_policy(self):
        with pytest.raises(StoreError):
            make_policy("magic")


class TestPoliciesThroughTheStore:
    """Same policies, driven end-to-end through ResultStore capacity."""

    def _store(self, eviction, capacity_entries=3):
        from repro import Deployment
        from repro.store.resultstore import StoreConfig

        d = Deployment(
            seed=b"evict-" + eviction.encode(),
            store_config=StoreConfig(
                capacity_entries=capacity_entries, eviction=eviction,
            ),
        )
        enclave = d.platform.create_enclave("evict-client", b"evict-code")
        client = d.store.connect("evict-addr", app_enclave=enclave)
        return d, client

    def _put(self, client, label):
        from repro.crypto.hashes import sha256
        from repro.net.messages import PutRequest

        tag = sha256(b"evict" + label)
        client.call(PutRequest(
            tag=tag, challenge=b"r" * 32, wrapped_key=b"k" * 16,
            sealed_result=b"blob-" + label, app_id="evict-client",
        ))
        return tag

    def _get(self, client, tag):
        from repro.net.messages import GetRequest

        return client.call(GetRequest(tag=tag, app_id="evict-client"))

    def test_lru_evicts_the_coldest_entry(self):
        d, client = self._store("lru")
        tags = [self._put(client, bytes([i])) for i in range(3)]
        self._get(client, tags[0])  # warm a and c; b stays cold
        self._get(client, tags[2])
        self._put(client, b"overflow")
        assert d.store.stats.evictions == 1
        assert not d.store.contains(tags[1])
        assert d.store.contains(tags[0]) and d.store.contains(tags[2])

    def test_lfu_evicts_the_least_hit_entry(self):
        d, client = self._store("lfu")
        tags = [self._put(client, bytes([i])) for i in range(3)]
        for _ in range(3):
            self._get(client, tags[0])
        self._get(client, tags[1])
        # tags[2] was never read: fewest hits, first out.
        self._put(client, b"overflow")
        assert not d.store.contains(tags[2])
        assert d.store.contains(tags[0]) and d.store.contains(tags[1])

    def test_fifo_evicts_the_oldest_entry_regardless_of_heat(self):
        d, client = self._store("fifo")
        tags = [self._put(client, bytes([i])) for i in range(3)]
        for _ in range(5):
            self._get(client, tags[0])  # heat does not save the oldest
        self._put(client, b"overflow")
        assert not d.store.contains(tags[0])
        assert d.store.contains(tags[1]) and d.store.contains(tags[2])

    def test_capacity_bytes_evicts_until_it_fits(self):
        from repro import Deployment
        from repro.crypto.hashes import sha256
        from repro.net.messages import PutRequest
        from repro.store.resultstore import StoreConfig

        d = Deployment(
            seed=b"evict-bytes",
            store_config=StoreConfig(capacity_bytes=300, eviction="fifo"),
        )
        enclave = d.platform.create_enclave("evict-client", b"evict-code")
        client = d.store.connect("evict-addr", app_enclave=enclave)
        for i in range(4):
            client.call(PutRequest(
                tag=sha256(b"bytes" + bytes([i])), challenge=b"r" * 32,
                wrapped_key=b"k" * 16, sealed_result=b"x" * 100,
                app_id="evict-client",
            ))
        assert d.store.stats.evictions >= 1
        assert len(d.store) < 4

    def test_single_entry_larger_than_capacity_rejected(self):
        import pytest as _pytest

        from repro import Deployment
        from repro.crypto.hashes import sha256
        from repro.errors import ProtocolError
        from repro.net.messages import PutRequest
        from repro.store.resultstore import StoreConfig

        d = Deployment(
            seed=b"evict-tiny",
            store_config=StoreConfig(capacity_bytes=10, eviction="lru"),
        )
        enclave = d.platform.create_enclave("evict-client", b"evict-code")
        client = d.store.connect("evict-addr", app_enclave=enclave)
        with _pytest.raises(ProtocolError):
            client.call(PutRequest(
                tag=sha256(b"huge"), challenge=b"r" * 32,
                wrapped_key=b"k" * 16, sealed_result=b"x" * 100,
                app_id="evict-client",
            ))
