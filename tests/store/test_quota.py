"""DoS quota manager: byte/entry/rate limits and release accounting."""

import pytest

from repro.errors import QuotaExceededError
from repro.sgx.cost_model import CostParams, SimClock
from repro.store.quota import QuotaManager, QuotaPolicy


@pytest.fixture
def clock():
    return SimClock(CostParams(cpu_freq_hz=1e9))


class TestByteAndEntryLimits:
    def test_byte_quota_enforced(self, clock):
        mgr = QuotaManager(QuotaPolicy(max_bytes_per_app=100), clock)
        mgr.admit_put("a", 60)
        with pytest.raises(QuotaExceededError):
            mgr.admit_put("a", 50)
        assert mgr.rejections == 1

    def test_entry_quota_enforced(self, clock):
        mgr = QuotaManager(QuotaPolicy(max_entries_per_app=2), clock)
        mgr.admit_put("a", 1)
        mgr.admit_put("a", 1)
        with pytest.raises(QuotaExceededError):
            mgr.admit_put("a", 1)

    def test_apps_isolated(self, clock):
        mgr = QuotaManager(QuotaPolicy(max_bytes_per_app=100), clock)
        mgr.admit_put("a", 100)
        mgr.admit_put("b", 100)  # b has its own budget

    def test_release_credits_back(self, clock):
        mgr = QuotaManager(QuotaPolicy(max_bytes_per_app=100), clock)
        mgr.admit_put("a", 100)
        mgr.release("a", 100)
        mgr.admit_put("a", 100)

    def test_usage_reporting(self, clock):
        mgr = QuotaManager(QuotaPolicy(), clock)
        mgr.admit_put("a", 42)
        assert mgr.usage_of("a") == (42, 1)


class TestRateLimit:
    def test_burst_exhaustion(self, clock):
        mgr = QuotaManager(QuotaPolicy(puts_per_second=1.0, burst=3), clock)
        for _ in range(3):
            mgr.admit_put("a", 1)
        with pytest.raises(QuotaExceededError):
            mgr.admit_put("a", 1)

    def test_tokens_refill_with_simulated_time(self, clock):
        mgr = QuotaManager(QuotaPolicy(puts_per_second=1.0, burst=1), clock)
        mgr.admit_put("a", 1)
        with pytest.raises(QuotaExceededError):
            mgr.admit_put("a", 1)
        clock.charge_seconds(2.0)  # simulated time passes
        mgr.admit_put("a", 1)

    def test_unlimited_rate_never_blocks(self, clock):
        mgr = QuotaManager(QuotaPolicy(), clock)
        for _ in range(1000):
            mgr.admit_put("a", 0)
