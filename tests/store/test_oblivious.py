"""Path ORAM: correctness, stash behaviour, obliviousness shape."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreError
from repro.sgx.cost_model import SimClock
from repro.store.oblivious import PathOram


def key(i: int) -> bytes:
    return b"key-%04d" % i


class TestCorrectness:
    def test_put_get(self):
        oram = PathOram(capacity=16)
        oram.put(key(1), "value-1")
        assert oram.get(key(1)) == "value-1"

    def test_missing_key_returns_none(self):
        oram = PathOram(capacity=16)
        assert oram.get(key(9)) is None

    def test_update_overwrites(self):
        oram = PathOram(capacity=16)
        oram.put(key(1), "old")
        oram.put(key(1), "new")
        assert oram.get(key(1)) == "new"
        assert len(oram) == 1

    def test_remove(self):
        oram = PathOram(capacity=16)
        oram.put(key(1), "v")
        assert oram.remove(key(1)) == "v"
        assert oram.get(key(1)) is None
        assert len(oram) == 0

    def test_many_keys_survive_churn(self):
        oram = PathOram(capacity=64, seed=b"churn")
        expected = {}
        for i in range(64):
            oram.put(key(i), i)
            expected[key(i)] = i
        # Interleave reads/updates/deletes.
        for i in range(0, 64, 3):
            oram.put(key(i), i * 10)
            expected[key(i)] = i * 10
        for i in range(1, 64, 7):
            oram.remove(key(i))
            del expected[key(i)]
        for k, v in expected.items():
            assert oram.get(k) == v, k

    def test_capacity_enforced(self):
        oram = PathOram(capacity=4)
        for i in range(4):
            oram.put(key(i), i)
        with pytest.raises(StoreError):
            oram.put(key(99), 99)

    def test_invalid_capacity(self):
        with pytest.raises(StoreError):
            PathOram(capacity=0)

    @given(st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 2)),  # (key idx, op)
        max_size=60,
    ))
    @settings(max_examples=25, deadline=None)
    def test_model_equivalence(self, operations):
        """ORAM behaves exactly like a dict under arbitrary op sequences."""
        oram = PathOram(capacity=32, seed=b"prop")
        model: dict[bytes, int] = {}
        for i, (k_idx, op) in enumerate(operations):
            k = key(k_idx)
            if op == 0:  # put
                if k in model or len(model) < 32:
                    oram.put(k, i)
                    model[k] = i
            elif op == 1:  # get
                assert oram.get(k) == model.get(k)
            else:  # remove
                assert oram.remove(k) == model.pop(k, None)
        for k, v in model.items():
            assert oram.get(k) == v


class TestObliviousness:
    def test_reads_remap_the_leaf(self):
        # The defining mechanism: after an access the block moves to a
        # fresh random path, so repeating a key does not repeat a path.
        oram = PathOram(capacity=256, seed=b"remap")
        oram.put(key(1), "v")
        leaves = set()
        for _ in range(16):
            oram.get(key(1))
            leaves.add(oram.path_of(key(1)))
        assert len(leaves) > 4

    def test_miss_and_hit_both_cost_one_path(self):
        clock_hit, clock_miss = SimClock(), SimClock()
        oram_hit = PathOram(capacity=64, clock=clock_hit, seed=b"a")
        oram_miss = PathOram(capacity=64, clock=clock_miss, seed=b"a")
        oram_hit.put(key(1), "v")
        oram_miss.put(key(1), "v")
        base_hit = clock_hit.snapshot()
        base_miss = clock_miss.snapshot()
        oram_hit.get(key(1))        # present
        oram_miss.get(key(999))     # absent
        assert clock_hit.since(base_hit) == clock_miss.since(base_miss)

    def test_stash_stays_small(self):
        oram = PathOram(capacity=128, seed=b"stash")
        for i in range(128):
            oram.put(key(i), i)
        for round_ in range(3):
            for i in range(128):
                oram.get(key(i))
        # Classic Path ORAM result: stash stays O(log N)-ish.
        assert oram.max_stash_seen < 40

    def test_access_counter(self):
        oram = PathOram(capacity=8)
        oram.put(key(1), 1)
        oram.get(key(1))
        oram.remove(key(1))
        assert oram.accesses == 3


class TestObliviousMetadataDict:
    def _entry(self, i: int, size=100):
        from repro.store.metadata import MetadataEntry, blob_digest

        return MetadataEntry(
            tag=b"tag-%04d" % i, challenge=b"r" * 32, wrapped_key=b"k" * 16,
            blob_ref=i, blob_digest=blob_digest(b"blob"), size=size, app_id="a",
        )

    def test_dict_interface(self):
        from repro.store.oblivious import ObliviousMetadataDict

        d = ObliviousMetadataDict(capacity=16)
        d.put(self._entry(1))
        assert len(d) == 1
        assert b"tag-0001" in d
        entry = d.get(b"tag-0001")
        assert entry.hits == 1
        d.get(b"tag-0001")
        assert d.peek(b"tag-0001").hits == 2  # peek does not bump hits
        removed = d.remove(b"tag-0001")
        assert removed.tag == b"tag-0001"
        assert len(d) == 0

    def test_total_bytes_counter(self):
        from repro.store.oblivious import ObliviousMetadataDict

        d = ObliviousMetadataDict(capacity=16)
        d.put(self._entry(1, size=100))
        d.put(self._entry(2, size=250))
        assert d.total_bytes() == 350
        d.remove(b"tag-0001")
        assert d.total_bytes() == 250

    def test_entries_scan(self):
        from repro.store.oblivious import ObliviousMetadataDict

        d = ObliviousMetadataDict(capacity=16)
        for i in range(5):
            d.put(self._entry(i))
        tags = sorted(e.tag for e in d.entries())
        assert tags == [b"tag-%04d" % i for i in range(5)]

    def test_duplicate_put_rejected(self):
        import pytest as _pytest

        from repro.errors import StoreError
        from repro.store.oblivious import ObliviousMetadataDict

        d = ObliviousMetadataDict(capacity=16)
        d.put(self._entry(1))
        with _pytest.raises(StoreError):
            d.put(self._entry(1))

    def test_remove_unknown_rejected(self):
        import pytest as _pytest

        from repro.errors import StoreError
        from repro.store.oblivious import ObliviousMetadataDict

        with _pytest.raises(StoreError):
            ObliviousMetadataDict(capacity=4).remove(b"ghost")

    def test_no_enclave_heap_extent(self):
        from repro.store.oblivious import ObliviousMetadataDict

        d = ObliviousMetadataDict(capacity=4)
        d.put(self._entry(1))
        assert d.slot_extent_bytes() == 0  # tree lives outside the EPC
