"""Untrusted blob arena: refs, accounting, adversarial mutation."""

import pytest

from repro.errors import StoreError
from repro.store.blobstore import BlobStore


class TestBasics:
    def test_put_get(self):
        store = BlobStore()
        ref = store.put(b"ciphertext")
        assert store.get(ref) == b"ciphertext"

    def test_refs_unique(self):
        store = BlobStore()
        assert store.put(b"a") != store.put(b"a")

    def test_dangling_ref(self):
        with pytest.raises(StoreError):
            BlobStore().get(42)

    def test_delete(self):
        store = BlobStore()
        ref = store.put(b"abc")
        store.delete(ref)
        with pytest.raises(StoreError):
            store.get(ref)

    def test_double_free(self):
        store = BlobStore()
        ref = store.put(b"abc")
        store.delete(ref)
        with pytest.raises(StoreError):
            store.delete(ref)

    def test_byte_accounting(self):
        store = BlobStore()
        r1 = store.put(b"12345")
        store.put(b"123")
        assert store.bytes_stored == 8
        store.delete(r1)
        assert store.bytes_stored == 3
        assert len(store) == 1


class TestAdversarialSurface:
    def test_tamper_flips_byte(self):
        store = BlobStore()
        ref = store.put(b"\x00\x00\x00")
        store.tamper(ref, offset=1)
        assert store.get(ref) == b"\x00\xff\x00"

    def test_tamper_out_of_range(self):
        store = BlobStore()
        ref = store.put(b"ab")
        with pytest.raises(StoreError):
            store.tamper(ref, offset=5)

    def test_swap(self):
        store = BlobStore()
        r1, r2 = store.put(b"one"), store.put(b"two")
        store.swap(r1, r2)
        assert store.get(r1) == b"two"
        assert store.get(r2) == b"one"
