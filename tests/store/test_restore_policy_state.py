"""Snapshot/restore preserves eviction-policy state.

A restored store must make the same eviction decisions the original
would have: LRU needs each entry's recency, LFU its hit count, FIFO its
insertion order — all carried by the v2 snapshot format.  Before that
fix a restore silently reset every entry to "just inserted, never hit",
so the first post-restart eviction could throw out the hottest entry.
"""

from repro import Deployment
from repro.crypto.hashes import sha256
from repro.net.messages import GetRequest, PutRequest
from repro.store.persistence import restore_store, snapshot_store
from repro.store.quota import QuotaPolicy
from repro.store.resultstore import StoreConfig


def make_store(seed: bytes, **config_kwargs):
    d = Deployment(seed=seed, store_config=StoreConfig(**config_kwargs))
    enclave = d.platform.create_enclave("restore-client", b"restore-code")
    client = d.store.connect("restore-addr", app_enclave=enclave)
    return d, client


def put(client, label: bytes, size: int = 32) -> bytes:
    tag = sha256(b"restore" + label)
    response = client.call(PutRequest(
        tag=tag, challenge=b"r" * 32, wrapped_key=b"k" * 16,
        sealed_result=(b"blob-" + label).ljust(size, b"."),
        app_id="restore-client",
    ))
    return tag if response.accepted else None


def warm(client, tag: bytes, times: int = 1) -> None:
    for _ in range(times):
        assert client.call(
            GetRequest(tag=tag, app_id="restore-client")
        ).found


def restored_copy(d, seed: bytes, **config_kwargs):
    """Snapshot ``d`` and restore into a fresh same-platform deployment."""
    blob = snapshot_store(d.store)
    fresh, client = make_store(seed, **config_kwargs)
    restore_store(fresh.store, blob)
    return fresh, client


class TestPolicyStateSurvivesRestore:
    def test_lru_recency_survives(self):
        config = dict(capacity_entries=3, eviction="lru")
        d, client = make_store(b"restore-lru", **config)
        tags = [put(client, bytes([i])) for i in range(3)]
        warm(client, tags[0])
        warm(client, tags[2])  # tags[1] stays coldest

        fresh, client2 = restored_copy(d, b"restore-lru", **config)
        put(client2, b"overflow")
        assert not fresh.store.contains(tags[1])
        assert fresh.store.contains(tags[0])
        assert fresh.store.contains(tags[2])

    def test_lfu_hit_counts_survive(self):
        config = dict(capacity_entries=3, eviction="lfu")
        d, client = make_store(b"restore-lfu", **config)
        tags = [put(client, bytes([i])) for i in range(3)]
        warm(client, tags[0], times=3)
        warm(client, tags[1], times=1)  # tags[2] never read

        fresh, client2 = restored_copy(d, b"restore-lfu", **config)
        put(client2, b"overflow")
        assert not fresh.store.contains(tags[2])
        assert fresh.store.contains(tags[0])
        assert fresh.store.contains(tags[1])

    def test_fifo_insert_order_survives(self):
        config = dict(capacity_entries=3, eviction="fifo")
        d, client = make_store(b"restore-fifo", **config)
        tags = [put(client, bytes([i])) for i in range(3)]
        warm(client, tags[0], times=5)  # heat must not save the oldest

        fresh, client2 = restored_copy(d, b"restore-fifo", **config)
        put(client2, b"overflow")
        assert not fresh.store.contains(tags[0])
        assert fresh.store.contains(tags[1])
        assert fresh.store.contains(tags[2])

    def test_per_entry_hit_counters_survive(self):
        d, client = make_store(b"restore-hits")
        tag = put(client, b"counted")
        warm(client, tag, times=4)
        assert d.store.entry_hits(tag) == 4

        fresh, _client2 = restored_copy(d, b"restore-hits")
        assert fresh.store.entry_hits(tag) == 4


class TestQuotaAndEvictionRoundTrip:
    def test_quota_rejections_still_apply_after_restore(self):
        config = dict(quota=QuotaPolicy(max_bytes_per_app=80))
        d, client = make_store(b"restore-quota", **config)
        assert put(client, b"a") is not None
        assert put(client, b"b") is not None
        assert put(client, b"c") is None  # over the byte quota

        fresh, client2 = restored_copy(d, b"restore-quota", **config)
        assert len(fresh.store) == 2
        # Restored usage counts against the quota: still over.
        assert put(client2, b"d") is None

    def test_mid_eviction_state_round_trips(self):
        # Snapshot a store that has already evicted under pressure; the
        # restored copy holds exactly the survivors and keeps evicting
        # from the same recency order.
        config = dict(capacity_entries=3, eviction="lru")
        d, client = make_store(b"restore-midevict", **config)
        tags = [put(client, bytes([i])) for i in range(4)]  # evicts tags[0]
        assert d.store.stats.evictions == 1
        assert not d.store.contains(tags[0])
        warm(client, tags[1])  # tags[2] is now the LRU victim

        fresh, client2 = restored_copy(d, b"restore-midevict", **config)
        assert len(fresh.store) == 3
        assert not fresh.store.contains(tags[0])
        put(client2, b"overflow")
        assert not fresh.store.contains(tags[2])
        assert fresh.store.contains(tags[1])
        assert fresh.store.contains(tags[3])
