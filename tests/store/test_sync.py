"""Master-store replication over remote attestation."""

import pytest

from repro import Deployment
from repro.crypto.hashes import sha256
from repro.errors import StoreError
from repro.net.messages import GetRequest, PutRequest
from repro.sgx.attestation import AttestationService
from repro.store.resultstore import StoreConfig
from repro.store.sync import replicate_popular


def two_machines(store_config_b=None):
    service = AttestationService()
    a = Deployment(seed=b"sync-a", machine="a", attestation_service=service)
    b = Deployment(seed=b"sync-b", machine="b", attestation_service=service,
                   store_config=store_config_b)
    return service, a, b


def fill(deployment, n, prefix=b"entry", hit=True):
    enclave = deployment.platform.create_enclave("filler", b"filler-code")
    client = deployment.store.connect("filler-addr", app_enclave=enclave)
    tags = []
    for i in range(n):
        tag = sha256(prefix + bytes([i]))
        tags.append(tag)
        client.call(PutRequest(tag=tag, challenge=b"r" * 32, wrapped_key=b"k" * 16,
                               sealed_result=b"blob-%d" % i, app_id="filler"))
        if hit:
            client.call(GetRequest(tag=tag))
    return tags


class TestReplication:
    def test_popular_entries_transfer(self):
        service, a, b = two_machines()
        tags = fill(a, 3)
        report = replicate_popular(service, a.store, b.store, min_hits=1)
        assert report.transferred == 3
        assert all(b.store.contains(t) for t in tags)

    def test_unpopular_entries_stay(self):
        service, a, b = two_machines()
        fill(a, 2, hit=False)  # never re-read: hits == 0
        report = replicate_popular(service, a.store, b.store, min_hits=1)
        assert report.transferred == 0

    def test_idempotent_no_redundancy(self):
        service, a, b = two_machines()
        fill(a, 3)
        replicate_popular(service, a.store, b.store)
        second = replicate_popular(service, a.store, b.store)
        assert second.transferred == 0
        assert second.duplicates == 3  # deterministic tags dedupe at master

    def test_multiple_sources_dedupe_at_master(self):
        service = AttestationService()
        a = Deployment(seed=b"m-a", machine="a", attestation_service=service)
        b = Deployment(seed=b"m-b", machine="b", attestation_service=service)
        master = Deployment(seed=b"m-m", machine="m", attestation_service=service)
        fill(a, 2, prefix=b"shared")
        fill(b, 2, prefix=b"shared")  # same tags computed independently
        r1 = replicate_popular(service, a.store, master.store)
        r2 = replicate_popular(service, b.store, master.store)
        assert r1.transferred == 2
        assert r2.transferred == 0
        assert r2.duplicates == 2

    def test_requires_sgx_stores(self):
        service = AttestationService()
        a = Deployment(seed=b"x-a", machine="a", attestation_service=service)
        b = Deployment(seed=b"x-b", machine="b", attestation_service=service,
                       store_config=StoreConfig(use_sgx=False))
        with pytest.raises(StoreError):
            replicate_popular(service, a.store, b.store)


class TestAttestedStoreChannel:
    def test_endpoints_round_trip_both_ways(self):
        from repro.store.sync import attested_store_channel

        service, a, b = two_machines()
        a_ep, b_ep = attested_store_channel(service, a.store, b.store)
        assert b_ep.unprotect(a_ep.protect(b"from-a")) == b"from-a"
        assert a_ep.unprotect(b_ep.protect(b"from-b")) == b"from-b"

    def test_channel_payloads_are_confidential(self):
        from repro.store.sync import attested_store_channel

        service, a, b = two_machines()
        a_ep, _ = attested_store_channel(service, a.store, b.store)
        secret = b"sealed result ciphertext"
        record = a_ep.protect(secret)
        assert secret not in record

    def test_tampered_record_rejected(self):
        import pytest as _pytest

        from repro.errors import ChannelError
        from repro.store.sync import attested_store_channel

        service, a, b = two_machines()
        a_ep, b_ep = attested_store_channel(service, a.store, b.store)
        record = bytearray(a_ep.protect(b"payload"))
        record[-1] ^= 0x01
        with _pytest.raises(ChannelError):
            b_ep.unprotect(bytes(record))

    def test_rejects_peer_with_foreign_signer(self):
        from repro.errors import AttestationError
        from repro.store.sync import attested_store_channel

        service, a, b = two_machines()
        # Forge the peer's signer identity after enclave launch: the
        # channel must refuse to treat it as a ResultStore.
        impostor = b.store.enclave.measurement
        object.__setattr__(impostor, "mrsigner", sha256(b"someone else"))
        with pytest.raises(AttestationError):
            attested_store_channel(service, a.store, b.store)

    def test_requires_sgx_on_both_sides(self):
        from repro.store.sync import attested_store_channel

        service, a, b = two_machines(
            store_config_b=StoreConfig(use_sgx=False))
        with pytest.raises(StoreError):
            attested_store_channel(service, a.store, b.store)


class TestEntryCodec:
    def test_round_trip(self):
        from repro.store.sync import _decode_entries, _encode_entries

        entries = [
            (sha256(b"t1"), b"r" * 32, b"k" * 16, b"sealed-one"),
            (sha256(b"t2"), b"s" * 32, b"j" * 16, b""),
        ]
        assert _decode_entries(_encode_entries(entries)) == entries

    def test_empty(self):
        from repro.store.sync import _decode_entries, _encode_entries

        assert _decode_entries(_encode_entries([])) == []

    def test_trailing_garbage_rejected(self):
        from repro.errors import SerializationError
        from repro.store.sync import _decode_entries, _encode_entries

        data = _encode_entries([(sha256(b"t"), b"r" * 32, b"k" * 16, b"x")])
        with pytest.raises(SerializationError):
            _decode_entries(data + b"extra")
