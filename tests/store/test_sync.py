"""Master-store replication over remote attestation."""

import pytest

from repro import Deployment
from repro.crypto.hashes import sha256
from repro.errors import StoreError
from repro.net.messages import GetRequest, PutRequest
from repro.sgx.attestation import AttestationService
from repro.store.resultstore import StoreConfig
from repro.store.sync import replicate_popular


def two_machines(store_config_b=None):
    service = AttestationService()
    a = Deployment(seed=b"sync-a", machine="a", attestation_service=service)
    b = Deployment(seed=b"sync-b", machine="b", attestation_service=service,
                   store_config=store_config_b)
    return service, a, b


def fill(deployment, n, prefix=b"entry", hit=True):
    enclave = deployment.platform.create_enclave("filler", b"filler-code")
    client = deployment.store.connect("filler-addr", app_enclave=enclave)
    tags = []
    for i in range(n):
        tag = sha256(prefix + bytes([i]))
        tags.append(tag)
        client.call(PutRequest(tag=tag, challenge=b"r" * 32, wrapped_key=b"k" * 16,
                               sealed_result=b"blob-%d" % i, app_id="filler"))
        if hit:
            client.call(GetRequest(tag=tag))
    return tags


class TestReplication:
    def test_popular_entries_transfer(self):
        service, a, b = two_machines()
        tags = fill(a, 3)
        report = replicate_popular(service, a.store, b.store, min_hits=1)
        assert report.transferred == 3
        assert all(b.store.contains(t) for t in tags)

    def test_unpopular_entries_stay(self):
        service, a, b = two_machines()
        fill(a, 2, hit=False)  # never re-read: hits == 0
        report = replicate_popular(service, a.store, b.store, min_hits=1)
        assert report.transferred == 0

    def test_idempotent_no_redundancy(self):
        service, a, b = two_machines()
        fill(a, 3)
        replicate_popular(service, a.store, b.store)
        second = replicate_popular(service, a.store, b.store)
        assert second.transferred == 0
        assert second.duplicates == 3  # deterministic tags dedupe at master

    def test_multiple_sources_dedupe_at_master(self):
        service = AttestationService()
        a = Deployment(seed=b"m-a", machine="a", attestation_service=service)
        b = Deployment(seed=b"m-b", machine="b", attestation_service=service)
        master = Deployment(seed=b"m-m", machine="m", attestation_service=service)
        fill(a, 2, prefix=b"shared")
        fill(b, 2, prefix=b"shared")  # same tags computed independently
        r1 = replicate_popular(service, a.store, master.store)
        r2 = replicate_popular(service, b.store, master.store)
        assert r1.transferred == 2
        assert r2.transferred == 0
        assert r2.duplicates == 2

    def test_requires_sgx_stores(self):
        service = AttestationService()
        a = Deployment(seed=b"x-a", machine="a", attestation_service=service)
        b = Deployment(seed=b"x-b", machine="b", attestation_service=service,
                       store_config=StoreConfig(use_sgx=False))
        with pytest.raises(StoreError):
            replicate_popular(service, a.store, b.store)
