"""Store persistence: seal, restart, restore (MRSIGNER policy)."""

import pytest

from repro import Deployment
from repro.errors import SealingError, StoreError
from repro.sgx.attestation import AttestationService
from repro.store.persistence import restore_store, snapshot_store
from repro.store.resultstore import StoreConfig
from tests.conftest import DOUBLE_DESC, double_bytes, make_libs


def filled_deployment(seed=b"persist-a", n=4):
    d = Deployment(seed=seed)
    app = d.create_application("writer", make_libs())
    dedup = app.deduplicable(DOUBLE_DESC)
    for i in range(n):
        dedup(b"doc-%d" % i)
        app.runtime.flush_puts()
    return d, app, dedup


class TestSnapshotRestore:
    def test_roundtrip_on_same_platform(self):
        d, app, dedup = filled_deployment()
        blob = snapshot_store(d.store)

        # "Restart": a second store instance on the *same physical
        # machine* (same seed + machine name -> same sealing fabric, as
        # on real hardware where seal keys are CPU-bound).
        fresh = Deployment(seed=b"persist-a")
        report = restore_store(fresh.store, blob)
        assert report.entries_restored == 4
        assert report.entries_skipped == 0
        assert len(fresh.store) == 4

        # A new application sees every restored result as a hit.
        app2 = fresh.create_application("reader", make_libs())
        dedup2 = app2.deduplicable(DOUBLE_DESC)
        for i in range(4):
            assert dedup2(b"doc-%d" % i) == double_bytes(b"doc-%d" % i)
        assert app2.runtime.stats.hits == 4

    def test_restore_is_idempotent(self):
        d, _, _ = filled_deployment(seed=b"persist-b")
        blob = snapshot_store(d.store)
        report = restore_store(d.store, blob)  # restore onto itself
        assert report.entries_restored == 0
        assert report.entries_skipped == 4

    def test_tampered_snapshot_rejected(self):
        d, _, _ = filled_deployment(seed=b"persist-c")
        blob = snapshot_store(d.store)
        tampered = type(blob)(
            policy=blob.policy,
            payload=blob.payload[:-1] + bytes([blob.payload[-1] ^ 1]),
        )
        fresh = Deployment(seed=b"persist-c")
        with pytest.raises(SealingError):
            restore_store(fresh.store, tampered)

    def test_requires_sgx_store(self):
        d = Deployment(seed=b"persist-d", store_config=StoreConfig(use_sgx=False))
        with pytest.raises(StoreError):
            snapshot_store(d.store)

    def test_restored_results_still_cross_app_protected(self):
        # Restoration must not weaken the scheme: an app with different
        # code still cannot use the restored entries.
        from repro import FunctionDescription, TrustedLibrary, TrustedLibraryRegistry

        d, _, _ = filled_deployment(seed=b"persist-e")
        blob = snapshot_store(d.store)
        fresh = Deployment(seed=b"persist-e")
        restore_store(fresh.store, blob)

        def impostor(data: bytes) -> bytes:
            return data * 3  # different code, same description

        libs = TrustedLibraryRegistry()
        libs.register(TrustedLibrary("testlib", "1.0").add("bytes double(bytes)", impostor))
        app = fresh.create_application("impostor", libs)
        dedup = app.deduplicable(DOUBLE_DESC)
        out = dedup(b"doc-0")
        assert out == impostor(b"doc-0")         # computed, not reused
        assert app.runtime.stats.hits == 0
