"""Controlled deduplication: measurement-based admission (§III-D)."""

import pytest

from repro import Deployment
from repro.sgx.measurement import measure_code
from repro.store.authorization import AuthorizationError, AuthorizationPolicy
from repro.store.resultstore import StoreConfig
from tests.conftest import DOUBLE_DESC, double_bytes, make_libs


def deployment_with_policy(policy, seed=b"authz"):
    return Deployment(seed=seed, store_config=StoreConfig(authorization=policy))


class TestPolicyObject:
    def test_open_admission(self):
        policy = AuthorizationPolicy(open_admission=True)
        assert policy.admits(measure_code(b"anything"))

    def test_default_denies(self):
        policy = AuthorizationPolicy()
        assert not policy.admits(measure_code(b"anything"))

    def test_allow_exact_enclave(self):
        meas = measure_code(b"app-code")
        policy = AuthorizationPolicy().allow_enclave(meas)
        assert policy.admits(meas)
        assert not policy.admits(measure_code(b"other-code"))

    def test_allow_signer(self):
        meas_a = measure_code(b"a", signer=b"vendor")
        meas_b = measure_code(b"b", signer=b"vendor")
        meas_x = measure_code(b"a", signer=b"other")
        policy = AuthorizationPolicy().allow_signer(meas_a.mrsigner)
        assert policy.admits(meas_a) and policy.admits(meas_b)
        assert not policy.admits(meas_x)

    def test_revocation(self):
        meas = measure_code(b"app")
        policy = AuthorizationPolicy().allow_enclave(meas)
        policy.revoke_enclave(meas)
        assert not policy.admits(meas)

    def test_check_counts_denials(self):
        policy = AuthorizationPolicy()
        with pytest.raises(AuthorizationError):
            policy.check(measure_code(b"x"))
        assert policy.denials == 1


class TestStoreIntegration:
    def test_unauthorized_application_cannot_connect(self):
        d = deployment_with_policy(AuthorizationPolicy())
        with pytest.raises(AuthorizationError):
            d.create_application("outsider", make_libs())

    def test_authorized_signer_connects_and_deduplicates(self):
        # All SPEED applications share the default dev signer.
        policy = AuthorizationPolicy().allow_signer(
            measure_code(b"whatever").mrsigner
        )
        d = deployment_with_policy(policy)
        app = d.create_application("member", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        assert dedup(b"x") == double_bytes(b"x")
        app.runtime.flush_puts()
        assert dedup(b"x") == double_bytes(b"x")
        assert app.runtime.stats.hits == 1

    def test_authorization_requires_sgx_mode(self):
        from repro.errors import StoreError

        with pytest.raises(StoreError):
            Deployment(
                seed=b"authz-nosgx",
                store_config=StoreConfig(
                    use_sgx=False,
                    authorization=AuthorizationPolicy(open_admission=True),
                ),
            ).create_application("app", make_libs())
