"""Property-based invariants of the ResultStore under random workloads.

Whatever sequence of PUTs/GETs arrives (including duplicates and
capacity pressure), these must always hold:

* entry count never exceeds the configured capacity;
* the blob arena holds exactly one blob per dictionary entry;
* tracked byte totals equal the arena's accounting;
* every GET for a stored tag returns the exact original ciphertext.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashes import sha256
from repro.net.messages import GetRequest, PutRequest
from repro.net.transport import Network
from repro.sgx.platform import SgxPlatform
from repro.store.resultstore import ResultStore, StoreConfig


def build_store(capacity_entries, eviction):
    platform = SgxPlatform(seed=b"inv")
    network = Network()
    store = ResultStore(
        platform, network,
        config=StoreConfig(capacity_entries=capacity_entries, eviction=eviction),
        seed=b"inv",
    )
    enclave = platform.create_enclave("client", b"client-code")
    client = store.connect("client-addr", app_enclave=enclave)
    return store, client


operation = st.tuples(
    st.sampled_from(["put", "get"]),
    st.integers(min_value=0, max_value=11),   # tag universe of 12
)


class TestStoreInvariants:
    @given(
        ops=st.lists(operation, max_size=40),
        capacity=st.integers(min_value=1, max_value=6),
        eviction=st.sampled_from(["lru", "lfu", "fifo"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_workload_invariants(self, ops, capacity, eviction):
        store, client = build_store(capacity, eviction)
        reference: dict[bytes, bytes] = {}   # what SHOULD be retrievable if present
        for op, tag_index in ops:
            tag = sha256(b"inv" + bytes([tag_index]))
            body = b"blob-%d" % tag_index
            if op == "put":
                response = client.call(PutRequest(
                    tag=tag, challenge=b"r" * 32, wrapped_key=b"k" * 16,
                    sealed_result=body, app_id="app",
                ))
                assert response.accepted
                reference[tag] = body
            else:
                response = client.call(GetRequest(tag=tag, app_id="app"))
                if response.found:
                    assert response.sealed_result == reference[tag]

            # Global invariants after every operation.
            assert len(store) <= capacity
            assert len(store.blobstore) == len(store)
            assert store.blobstore.bytes_stored == store._dict.total_bytes()

    @given(ops=st.lists(operation, max_size=30))
    @settings(max_examples=15, deadline=None)
    def test_unbounded_store_never_evicts(self, ops):
        store, client = build_store(None, "lru")
        puts = set()
        for op, tag_index in ops:
            tag = sha256(b"unb" + bytes([tag_index]))
            if op == "put":
                client.call(PutRequest(tag=tag, challenge=b"r" * 32,
                                       wrapped_key=b"k" * 16,
                                       sealed_result=b"x", app_id="app"))
                puts.add(tag)
            else:
                response = client.call(GetRequest(tag=tag, app_id="app"))
                assert response.found == (tag in puts)
        assert store.stats.evictions == 0
        assert len(store) == len(puts)
