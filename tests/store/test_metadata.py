"""Metadata dictionary: slots, access tracking, EPC touch integration."""

import pytest

from repro.errors import StoreError
from repro.store.metadata import ENTRY_SLOT_BYTES, MetadataDict, MetadataEntry, blob_digest


def entry(tag: bytes, size=100, app="app") -> MetadataEntry:
    return MetadataEntry(
        tag=tag, challenge=b"r" * 32, wrapped_key=b"k" * 16,
        blob_ref=1, blob_digest=blob_digest(b"blob"), size=size, app_id=app,
    )


class TestBasics:
    def test_put_get(self):
        d = MetadataDict()
        d.put(entry(b"t1"))
        assert d.get(b"t1").tag == b"t1"
        assert d.get(b"missing") is None

    def test_contains_and_len(self):
        d = MetadataDict()
        assert b"t" not in d
        d.put(entry(b"t"))
        assert b"t" in d
        assert len(d) == 1

    def test_duplicate_insert_rejected(self):
        d = MetadataDict()
        d.put(entry(b"t"))
        with pytest.raises(StoreError):
            d.put(entry(b"t"))

    def test_remove(self):
        d = MetadataDict()
        d.put(entry(b"t"))
        removed = d.remove(b"t")
        assert removed.tag == b"t"
        assert b"t" not in d

    def test_remove_unknown_rejected(self):
        with pytest.raises(StoreError):
            MetadataDict().remove(b"ghost")

    def test_total_bytes(self):
        d = MetadataDict()
        d.put(entry(b"a", size=100))
        d.put(entry(b"b", size=250))
        assert d.total_bytes() == 350


class TestAccessTracking:
    def test_hits_increment(self):
        d = MetadataDict()
        d.put(entry(b"t"))
        d.get(b"t")
        d.get(b"t")
        assert d.get(b"t").hits == 3

    def test_recency_ordering(self):
        d = MetadataDict()
        d.put(entry(b"a"))
        d.put(entry(b"b"))
        d.get(b"a")
        entries = {e.tag: e for e in d.entries()}
        assert entries[b"a"].last_access_seq > entries[b"b"].last_access_seq


class TestSlots:
    def test_slots_are_reused(self):
        d = MetadataDict()
        d.put(entry(b"a"))
        slot_a = d.get(b"a").slot
        d.remove(b"a")
        d.put(entry(b"b"))
        assert d.get(b"b").slot == slot_a

    def test_extent_grows_with_fresh_slots(self):
        d = MetadataDict()
        for i in range(5):
            d.put(entry(bytes([i]) * 4))
        assert d.slot_extent_bytes() == 5 * ENTRY_SLOT_BYTES

    def test_touch_callback_receives_slot_extent(self):
        touches = []
        d = MetadataDict()
        d.put(entry(b"t"), touch=lambda r, o, n: touches.append((r, o, n)))
        d.get(b"t", touch=lambda r, o, n: touches.append((r, o, n)))
        assert touches[0] == ("store/metadata", 0, ENTRY_SLOT_BYTES)
        assert touches[1] == touches[0]


class TestBlobDigest:
    def test_deterministic(self):
        assert blob_digest(b"x") == blob_digest(b"x")

    def test_sensitive_to_content(self):
        assert blob_digest(b"x") != blob_digest(b"y")
