"""ResultStore service: GET/PUT semantics, capacity, tamper handling."""

import pytest

from repro.crypto.hashes import sha256
from repro.net.messages import GetRequest, PutRequest, SyncRequest
from repro.net.transport import Network
from repro.sgx.platform import SgxPlatform
from repro.store.quota import QuotaPolicy
from repro.store.resultstore import ResultStore, StoreConfig


def make_store(config: StoreConfig | None = None, seed=b"store-tests"):
    platform = SgxPlatform(seed=seed)
    network = Network()
    store = ResultStore(platform, network, config=config, seed=seed)
    if store.config.use_sgx:
        enclave = platform.create_enclave("client-app", b"client-code")
    else:
        enclave = None
    client = store.connect("client-addr", app_enclave=enclave)
    return store, client


def put(tag: bytes, body: bytes = b"sealed-bytes", app="app") -> PutRequest:
    return PutRequest(tag=tag, challenge=b"r" * 32, wrapped_key=b"k" * 16,
                      sealed_result=body, app_id=app)


TAG = sha256(b"tag-1")
TAG2 = sha256(b"tag-2")


class TestGetPut:
    def test_miss_then_hit(self):
        store, client = make_store()
        miss = client.call(GetRequest(tag=TAG))
        assert not miss.found
        accepted = client.call(put(TAG))
        assert accepted.accepted
        hit = client.call(GetRequest(tag=TAG))
        assert hit.found
        assert hit.sealed_result == b"sealed-bytes"
        assert hit.challenge == b"r" * 32
        assert hit.wrapped_key == b"k" * 16

    def test_duplicate_put_first_wins(self):
        store, client = make_store()
        client.call(put(TAG, b"original"))
        response = client.call(put(TAG, b"attackers-replacement"))
        assert response.accepted
        assert response.reason == "already stored"
        assert client.call(GetRequest(tag=TAG)).sealed_result == b"original"
        assert store.stats.puts_duplicate == 1

    def test_stats(self):
        store, client = make_store()
        client.call(GetRequest(tag=TAG))
        client.call(put(TAG))
        client.call(GetRequest(tag=TAG))
        assert store.stats.gets == 2
        assert store.stats.hits == 1
        assert store.stats.puts == 1
        assert store.stats.hit_rate() == 0.5

    def test_entry_hits_tracked(self):
        store, client = make_store()
        client.call(put(TAG))
        client.call(GetRequest(tag=TAG))
        client.call(GetRequest(tag=TAG))
        assert store.entry_hits(TAG) == 2


class TestValidation:
    def test_bad_tag_length(self):
        from repro.errors import ProtocolError

        _, client = make_store()
        with pytest.raises(ProtocolError):
            client.call(GetRequest(tag=b"short"))

    def test_bad_challenge_length(self):
        from repro.errors import ProtocolError

        _, client = make_store()
        bad = PutRequest(tag=TAG, challenge=b"short", wrapped_key=b"k" * 16,
                         sealed_result=b"x", app_id="a")
        with pytest.raises(ProtocolError):
            client.call(bad)

    def test_empty_challenge_allowed_for_single_key_scheme(self):
        _, client = make_store()
        ok = PutRequest(tag=TAG, challenge=b"", wrapped_key=b"",
                        sealed_result=b"x", app_id="a")
        assert client.call(ok).accepted

    def test_unconnected_client_rejected(self):
        from repro.errors import StoreError

        store, _ = make_store()
        rogue = store.network.endpoint("rogue", store.platform.clock)
        with pytest.raises(StoreError):
            rogue.send(store.address, b"raw-bytes")


class TestTamperDetection:
    def test_tampered_blob_served_as_miss(self):
        store, client = make_store()
        client.call(put(TAG))
        store.blobstore.tamper(store.blob_ref_of(TAG))
        response = client.call(GetRequest(tag=TAG))
        assert not response.found
        assert store.stats.tamper_detected == 1
        # The poisoned entry was dropped entirely.
        assert not store.contains(TAG)

    def test_swapped_blobs_detected(self):
        store, client = make_store()
        client.call(put(TAG, b"result-one"))
        client.call(put(TAG2, b"result-two"))
        store.blobstore.swap(store.blob_ref_of(TAG), store.blob_ref_of(TAG2))
        assert not client.call(GetRequest(tag=TAG)).found
        assert store.stats.tamper_detected >= 1

    def test_digest_check_can_be_disabled(self):
        store, client = make_store(StoreConfig(verify_blob_digest=False))
        client.call(put(TAG))
        store.blobstore.tamper(store.blob_ref_of(TAG))
        # Without the store-side digest the poisoned bytes are served —
        # the application's AEAD check is then the last line of defence.
        assert client.call(GetRequest(tag=TAG)).found


class TestCapacity:
    def test_entry_capacity_evicts_lru(self):
        store, client = make_store(StoreConfig(capacity_entries=2, eviction="lru"))
        t = [sha256(bytes([i])) for i in range(3)]
        client.call(put(t[0]))
        client.call(put(t[1]))
        client.call(GetRequest(tag=t[0]))  # t0 recently used
        client.call(put(t[2]))              # evicts t1
        assert store.contains(t[0])
        assert not store.contains(t[1])
        assert store.stats.evictions == 1

    def test_byte_capacity(self):
        store, client = make_store(StoreConfig(capacity_bytes=250))
        client.call(put(TAG, b"x" * 100))
        client.call(put(TAG2, b"y" * 200))  # 300 bytes total > 250
        assert not store.contains(TAG)
        assert store.contains(TAG2)

    def test_blob_arena_stays_in_sync(self):
        store, client = make_store(StoreConfig(capacity_entries=1))
        client.call(put(TAG, b"a" * 50))
        client.call(put(TAG2, b"b" * 50))
        assert len(store.blobstore) == 1
        assert store.blobstore.bytes_stored == 50


class TestQuotaIntegration:
    def test_quota_rejection_is_clean_put_response(self):
        store, client = make_store(
            StoreConfig(quota=QuotaPolicy(max_entries_per_app=1))
        )
        assert client.call(put(TAG, app="greedy")).accepted
        rejected = client.call(put(TAG2, app="greedy"))
        assert not rejected.accepted
        assert "quota" in rejected.reason


class TestNoSgxVariant:
    def test_same_functionality_without_enclave(self):
        store, client = make_store(StoreConfig(use_sgx=False))
        assert store.enclave is None
        client.call(put(TAG))
        assert client.call(GetRequest(tag=TAG)).found

    def test_sgx_mode_charges_more_cycles(self):
        sgx_store, sgx_client = make_store(StoreConfig(use_sgx=True), seed=b"s1")
        plain_store, plain_client = make_store(StoreConfig(use_sgx=False), seed=b"s2")
        mark = sgx_store.platform.clock.snapshot()
        sgx_client.call(put(TAG))
        sgx_cost = sgx_store.platform.clock.since(mark)
        mark = plain_store.platform.clock.snapshot()
        plain_client.call(put(TAG))
        plain_cost = plain_store.platform.clock.since(mark)
        assert sgx_cost > plain_cost


class TestSyncHandler:
    def test_sync_filters_by_hits_and_known_tags(self):
        store, client = make_store()
        client.call(put(TAG, b"one"))
        client.call(put(TAG2, b"two"))
        client.call(GetRequest(tag=TAG))  # TAG now has 1 hit
        response = client.call(SyncRequest(known_tags=(), min_hits=1))
        tags = [e[0] for e in response.entries]
        assert tags == [TAG]
        # Known tags are excluded.
        response = client.call(SyncRequest(known_tags=(TAG,), min_hits=1))
        assert response.entries == ()

    def test_ingest_entry_idempotent(self):
        store, _ = make_store()
        assert store.ingest_entry(TAG, b"r" * 32, b"k" * 16, b"blob")
        assert not store.ingest_entry(TAG, b"r" * 32, b"k" * 16, b"blob")
