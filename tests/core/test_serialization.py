"""Parsers: canonical roundtrips, registry resolution, AnyParser."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.serialization import (
    AnyParser,
    BytesParser,
    FloatParser,
    IntParser,
    ListParser,
    MappingParser,
    NdarrayParser,
    TextParser,
    TupleParser,
    default_registry,
)
from repro.errors import SerializationError


class TestScalarParsers:
    @given(st.binary(max_size=256))
    @settings(max_examples=30, deadline=None)
    def test_bytes_roundtrip(self, value):
        p = BytesParser()
        assert p.decode(p.encode(value)) == value

    @given(st.text(max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_text_roundtrip(self, value):
        p = TextParser()
        assert p.decode(p.encode(value)) == value

    @given(st.integers(min_value=-(2**200), max_value=2**200))
    @settings(max_examples=50, deadline=None)
    def test_int_roundtrip(self, value):
        p = IntParser()
        assert p.decode(p.encode(value)) == value

    @given(st.floats(allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_float_roundtrip(self, value):
        p = FloatParser()
        assert p.decode(p.encode(value)) == value

    def test_type_mismatches_rejected(self):
        with pytest.raises(SerializationError):
            BytesParser().encode("not bytes")
        with pytest.raises(SerializationError):
            TextParser().encode(b"not str")
        with pytest.raises(SerializationError):
            IntParser().encode(True)  # bool is not an int here
        with pytest.raises(SerializationError):
            FloatParser().encode(1)


class TestNdarrayParser:
    @given(
        arrays(
            dtype=st.sampled_from([np.uint8, np.int32, np.float64]),
            shape=st.tuples(st.integers(0, 5), st.integers(0, 5)),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, arr):
        p = NdarrayParser()
        out = p.decode(p.encode(arr))
        assert out.dtype == arr.dtype and out.shape == arr.shape
        assert np.array_equal(out, arr, equal_nan=True)

    def test_canonical_under_views(self):
        # A transposed copy and its contiguous version encode identically.
        p = NdarrayParser()
        base = np.arange(12).reshape(3, 4)
        assert p.encode(base.T) == p.encode(np.ascontiguousarray(base.T))

    def test_truncated_buffer_rejected(self):
        p = NdarrayParser()
        data = p.encode(np.zeros((2, 2)))
        with pytest.raises(SerializationError):
            p.decode(data[:-8])


class TestCompositeParsers:
    def test_tuple_roundtrip(self):
        p = TupleParser(BytesParser(), IntParser(), TextParser())
        value = (b"abc", -42, "hello")
        assert p.decode(p.encode(value)) == value

    def test_tuple_arity_enforced(self):
        p = TupleParser(BytesParser(), IntParser())
        with pytest.raises(SerializationError):
            p.encode((b"only-one",))

    def test_list_roundtrip(self):
        p = ListParser(IntParser())
        assert p.decode(p.encode([1, 2, 3])) == [1, 2, 3]
        assert p.decode(p.encode([])) == []

    def test_mapping_roundtrip_sorted(self):
        p = MappingParser(IntParser())
        value = {"zebra": 1, "apple": 2}
        assert p.decode(p.encode(value)) == value
        # Canonical: encoding is independent of insertion order.
        assert p.encode({"a": 1, "b": 2}) == p.encode({"b": 2, "a": 1})

    def test_mapping_rejects_non_string_keys(self):
        with pytest.raises(SerializationError):
            MappingParser(IntParser()).encode({1: 2})


class TestRegistry:
    def test_resolution_by_type(self):
        registry = default_registry()
        assert registry.for_value(b"x").name == "bytes"
        assert registry.for_value("x").name == "text"
        assert registry.for_value(np.zeros(2)).name == "ndarray"
        assert registry.for_value(5).name == "int"
        assert registry.for_value(1.5).name == "float"

    def test_unknown_type(self):
        with pytest.raises(SerializationError, match="no parser registered"):
            default_registry().for_value(object())

    def test_unknown_name(self):
        with pytest.raises(SerializationError):
            default_registry().by_name("ghost")

    def test_duplicate_name_rejected(self):
        registry = default_registry()
        with pytest.raises(SerializationError):
            registry.register(BytesParser())


class TestAnyParser:
    @pytest.mark.parametrize("value", [b"bytes", "text", 42, 2.5])
    def test_roundtrip_scalars(self, value):
        p = AnyParser(default_registry())
        assert p.decode(p.encode(value)) == value

    def test_roundtrip_ndarray(self):
        p = AnyParser(default_registry())
        arr = np.arange(6, dtype=np.uint8).reshape(2, 3)
        assert np.array_equal(p.decode(p.encode(arr)), arr)

    def test_distinct_types_distinct_encodings(self):
        p = AnyParser(default_registry())
        assert p.encode(b"1") != p.encode("1")
