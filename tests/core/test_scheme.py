"""Result-protection schemes: Algorithms 1 & 2 and their properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheme import (
    CHALLENGE_SIZE,
    KEY_SIZE,
    CrossAppScheme,
    PlaintextScheme,
    SingleKeyScheme,
)
from repro.core.tag import derive_tag
from repro.crypto.drbg import HmacDrbg
from repro.errors import CryptoError, IntegrityError

FUNC = b"\x01" * 32
INPUT = b"the input data m"
RESULT = b"the computed result res"


def rand(seed=b"scheme-tests"):
    return HmacDrbg(seed).generate


def tag_for(func=FUNC, inp=INPUT):
    return derive_tag(func, inp)


class TestCrossAppScheme:
    def test_protect_recover_roundtrip(self):
        scheme = CrossAppScheme()
        tag = tag_for()
        protected = scheme.protect(FUNC, INPUT, tag, RESULT, rand())
        assert scheme.recover(FUNC, INPUT, tag, protected) == RESULT

    def test_cross_application_recovery(self):
        # App B (different randomness source, same func + input) recovers.
        scheme = CrossAppScheme()
        tag = tag_for()
        protected = scheme.protect(FUNC, INPUT, tag, RESULT, rand(b"app-a"))
        assert CrossAppScheme().recover(FUNC, INPUT, tag, protected) == RESULT

    def test_wrong_input_cannot_recover(self):
        scheme = CrossAppScheme()
        tag = tag_for()
        protected = scheme.protect(FUNC, INPUT, tag, RESULT, rand())
        with pytest.raises(IntegrityError):
            scheme.recover(FUNC, b"some other input", tag, protected)

    def test_wrong_function_cannot_recover(self):
        scheme = CrossAppScheme()
        tag = tag_for()
        protected = scheme.protect(FUNC, INPUT, tag, RESULT, rand())
        with pytest.raises(IntegrityError):
            scheme.recover(b"\x02" * 32, INPUT, tag, protected)

    def test_wrong_tag_cannot_recover(self):
        # The AEAD binds [res] to the tag: moving a ciphertext under a
        # different tag (cache poisoning) fails authentication.
        scheme = CrossAppScheme()
        protected = scheme.protect(FUNC, INPUT, tag_for(), RESULT, rand())
        with pytest.raises(IntegrityError):
            scheme.recover(FUNC, INPUT, tag_for(inp=b"other"), protected)

    def test_tampered_ciphertext_detected(self):
        scheme = CrossAppScheme()
        tag = tag_for()
        protected = scheme.protect(FUNC, INPUT, tag, RESULT, rand())
        bad = type(protected)(
            challenge=protected.challenge,
            wrapped_key=protected.wrapped_key,
            sealed_result=protected.sealed_result[:-1]
            + bytes([protected.sealed_result[-1] ^ 1]),
        )
        with pytest.raises(IntegrityError):
            scheme.recover(FUNC, INPUT, tag, bad)

    def test_randomized_ciphertexts(self):
        scheme = CrossAppScheme()
        tag = tag_for()
        drbg = HmacDrbg(b"x")
        a = scheme.protect(FUNC, INPUT, tag, RESULT, drbg.generate)
        b = scheme.protect(FUNC, INPUT, tag, RESULT, drbg.generate)
        assert a.sealed_result != b.sealed_result
        assert a.challenge != b.challenge

    def test_shapes(self):
        protected = CrossAppScheme().protect(FUNC, INPUT, tag_for(), RESULT, rand())
        assert len(protected.challenge) == CHALLENGE_SIZE
        assert len(protected.wrapped_key) == KEY_SIZE

    def test_malformed_challenge_rejected(self):
        scheme = CrossAppScheme()
        tag = tag_for()
        protected = scheme.protect(FUNC, INPUT, tag, RESULT, rand())
        bad = type(protected)(challenge=b"short", wrapped_key=protected.wrapped_key,
                              sealed_result=protected.sealed_result)
        with pytest.raises(CryptoError):
            scheme.recover(FUNC, INPUT, tag, bad)

    @given(st.binary(max_size=512), st.binary(max_size=512))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, input_bytes, result_bytes):
        scheme = CrossAppScheme()
        tag = derive_tag(FUNC, input_bytes)
        protected = scheme.protect(FUNC, input_bytes, tag, result_bytes, rand())
        assert scheme.recover(FUNC, input_bytes, tag, protected) == result_bytes


class TestSingleKeyScheme:
    def test_roundtrip(self):
        scheme = SingleKeyScheme(b"k" * 16)
        tag = tag_for()
        protected = scheme.protect(FUNC, INPUT, tag, RESULT, rand())
        assert scheme.recover(FUNC, INPUT, tag, protected) == RESULT
        assert protected.challenge == b""

    def test_wrong_system_key_fails(self):
        tag = tag_for()
        protected = SingleKeyScheme(b"k" * 16).protect(FUNC, INPUT, tag, RESULT, rand())
        with pytest.raises(IntegrityError):
            SingleKeyScheme(b"x" * 16).recover(FUNC, INPUT, tag, protected)

    def test_single_point_of_compromise(self):
        # The §III-B weakness: anyone with the system key decrypts, even
        # without owning (func, m).
        key = b"k" * 16
        tag = tag_for()
        protected = SingleKeyScheme(key).protect(FUNC, INPUT, tag, RESULT, rand())
        stolen = SingleKeyScheme(key).recover(
            b"attacker-func-id-0000000000000000", b"attacker input", tag, protected
        )
        assert stolen == RESULT

    def test_bad_key_size(self):
        with pytest.raises(CryptoError):
            SingleKeyScheme(b"short")


class TestPlaintextScheme:
    def test_stores_in_clear(self):
        protected = PlaintextScheme().protect(FUNC, INPUT, tag_for(), RESULT, rand())
        assert protected.sealed_result == RESULT  # the UNIC regime
