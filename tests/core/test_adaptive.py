"""Adaptive deduplication strategy (the paper's §VII future work)."""

import pytest

from repro import Deployment, RuntimeConfig
from repro.core.adaptive import AdaptiveDedupPolicy
from tests.conftest import DOUBLE_DESC, make_libs


class TestPolicyUnit:
    FUNC = b"\x01" * 32

    def test_starts_enabled(self):
        policy = AdaptiveDedupPolicy()
        assert policy.should_attempt_dedup(self.FUNC)

    def test_needs_min_observations_before_deciding(self):
        policy = AdaptiveDedupPolicy(min_observations=10)
        for _ in range(5):
            # Terrible economics: lookups cost 10x the compute.
            policy.observe_miss(self.FUNC, sim_seconds=1.0, compute_seconds=0.1)
        assert policy.should_attempt_dedup(self.FUNC)

    def test_disables_unprofitable_function(self):
        policy = AdaptiveDedupPolicy(min_observations=4)
        for _ in range(6):
            policy.observe_miss(self.FUNC, sim_seconds=1.0, compute_seconds=0.1)
        assert not policy.profile(self.FUNC).dedup_enabled

    def test_keeps_profitable_function_enabled(self):
        policy = AdaptiveDedupPolicy(min_observations=4)
        for _ in range(3):
            policy.observe_miss(self.FUNC, sim_seconds=1.05, compute_seconds=1.0)
        for _ in range(6):
            policy.observe_hit(self.FUNC, sim_seconds=0.01)
        assert policy.profile(self.FUNC).dedup_enabled

    def test_probing_while_suppressed(self):
        policy = AdaptiveDedupPolicy(min_observations=2, probe_interval=4)
        for _ in range(4):
            policy.observe_miss(self.FUNC, sim_seconds=1.0, compute_seconds=0.01)
        assert not policy.profile(self.FUNC).dedup_enabled
        decisions = [policy.should_attempt_dedup(self.FUNC) for _ in range(8)]
        assert decisions.count(True) == 2  # every 4th call probes

    def test_reenables_when_hits_arrive(self):
        policy = AdaptiveDedupPolicy(min_observations=2, probe_interval=2)
        for _ in range(4):
            policy.observe_miss(self.FUNC, sim_seconds=1.0, compute_seconds=0.5)
        assert not policy.profile(self.FUNC).dedup_enabled
        # The workload turns repetitive: probes now hit very cheaply.
        for _ in range(10):
            policy.observe_hit(self.FUNC, sim_seconds=0.01)
        assert policy.profile(self.FUNC).dedup_enabled

    def test_functions_profiled_independently(self):
        policy = AdaptiveDedupPolicy(min_observations=2)
        other = b"\x02" * 32
        for _ in range(4):
            policy.observe_miss(self.FUNC, sim_seconds=1.0, compute_seconds=0.01)
            policy.observe_hit(other, sim_seconds=0.001)
        assert not policy.profile(self.FUNC).dedup_enabled
        assert policy.profile(other).dedup_enabled


class TestRuntimeIntegration:
    def _app(self, policy):
        d = Deployment(seed=b"adaptive")
        return d, d.create_application(
            "adaptive-app",
            make_libs(),
            RuntimeConfig(app_id="adaptive-app", adaptive=policy),
        )

    def test_unprofitable_workload_stops_querying_the_store(self):
        policy = AdaptiveDedupPolicy(min_observations=4, probe_interval=100)
        d, app = self._app(policy)
        dedup = app.deduplicable(DOUBLE_DESC)
        # All-unique inputs on a trivially cheap function: dedup never
        # pays.  (double() costs ~nothing; the GET path costs real sim
        # time.)
        for i in range(30):
            dedup(b"unique-%d" % i)
        gets_seen = d.store.stats.gets
        assert gets_seen < 30  # suppression kicked in mid-stream
        func_identity = app.runtime.libraries.function_identity(DOUBLE_DESC)
        assert not policy.profile(func_identity).dedup_enabled

    def test_results_remain_correct_under_suppression(self):
        from tests.conftest import double_bytes

        policy = AdaptiveDedupPolicy(min_observations=2, probe_interval=50)
        _, app = self._app(policy)
        dedup = app.deduplicable(DOUBLE_DESC)
        for i in range(20):
            assert dedup(b"input-%d" % i) == double_bytes(b"input-%d" % i)

    def test_adaptive_none_is_always_on(self):
        d, app = self._app(None)
        dedup = app.deduplicable(DOUBLE_DESC)
        for i in range(10):
            dedup(b"unique-%d" % i)
        assert d.store.stats.gets == 10
