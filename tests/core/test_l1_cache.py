"""The in-enclave L1 tag→result cache: LRU behavior, EPC cost, safety."""

import pytest

from repro import Deployment, RuntimeConfig
from repro.core.cache import ENTRY_OVERHEAD_BYTES, L1ResultCache
from repro.errors import DedupError, EnclaveError
from repro.sgx.platform import SgxPlatform
from tests.conftest import DOUBLE_DESC, double_bytes, make_libs

KB = 1024
MB = 1024 * 1024


def make_enclave(epc_usable_bytes: int = 16 * MB):
    platform = SgxPlatform(seed=b"l1-cache", epc_usable_bytes=epc_usable_bytes)
    return platform, platform.create_enclave("l1-app", b"l1-app-code")


def tag(i: int) -> bytes:
    return bytes([i]) * 32


class TestLruSemantics:
    def test_hit_and_miss(self):
        _, enclave = make_enclave()
        cache = L1ResultCache(enclave, max_entries=4)
        with enclave.ecall("test"):
            assert cache.get(tag(1)) is None
            assert cache.put(tag(1), b"result-1")
            assert cache.get(tag(1)) == b"result-1"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.insertions == 1

    def test_entry_count_eviction_is_lru(self):
        _, enclave = make_enclave()
        cache = L1ResultCache(enclave, max_entries=2)
        with enclave.ecall("test"):
            cache.put(tag(1), b"one")
            cache.put(tag(2), b"two")
            cache.get(tag(1))  # refresh 1; 2 becomes the LRU victim
            cache.put(tag(3), b"three")
            assert cache.get(tag(2)) is None
            assert cache.get(tag(1)) == b"one"
            assert cache.get(tag(3)) == b"three"
        assert len(cache) == 2
        assert cache.stats.evictions == 1

    def test_byte_bound_eviction(self):
        _, enclave = make_enclave()
        footprint = 100 + ENTRY_OVERHEAD_BYTES
        cache = L1ResultCache(enclave, max_entries=100, max_bytes=2 * footprint)
        with enclave.ecall("test"):
            cache.put(tag(1), b"x" * 100)
            cache.put(tag(2), b"y" * 100)
            cache.put(tag(3), b"z" * 100)
            assert tag(1) not in cache
        assert cache.current_bytes == 2 * footprint

    def test_oversized_entry_not_cached(self):
        _, enclave = make_enclave()
        cache = L1ResultCache(enclave, max_entries=4, max_bytes=256)
        with enclave.ecall("test"):
            assert not cache.put(tag(1), b"x" * KB)
            assert cache.get(tag(1)) is None
        assert len(cache) == 0

    def test_clear_keeps_cumulative_stats(self):
        _, enclave = make_enclave()
        cache = L1ResultCache(enclave, max_entries=4)
        with enclave.ecall("test"):
            cache.put(tag(1), b"one")
            cache.clear()
            assert cache.get(tag(1)) is None
        assert cache.stats.insertions == 1
        assert cache.current_bytes == 0

    def test_invalid_bounds_rejected(self):
        _, enclave = make_enclave()
        with pytest.raises(DedupError):
            L1ResultCache(enclave, max_entries=0)
        with pytest.raises(DedupError):
            L1ResultCache(enclave, max_entries=4, max_bytes=0)


class TestEpcCharging:
    def test_access_outside_enclave_rejected(self):
        _, enclave = make_enclave()
        cache = L1ResultCache(enclave, max_entries=4)
        with pytest.raises(EnclaveError):
            cache.put(tag(1), b"data")

    def test_faulting_lookup_charges_simulated_cycles(self):
        # Fill well past the EPC so entry 0's pages have been evicted;
        # touching them again must charge paging cycles to the clock.
        platform, enclave = make_enclave(epc_usable_bytes=1 * MB)
        cache = L1ResultCache(enclave, max_entries=64)
        with enclave.ecall("test"):
            for i in range(32):
                cache.put(tag(i), bytes([i]) * (64 * KB))
            before = platform.clock.snapshot()
            cache.get(tag(0))
            assert platform.clock.since(before) > 0

    def test_oversized_working_set_pays_page_faults(self):
        # An L1 bigger than the EPC thrashes: sweeping it round-robin
        # faults on every entry once resident pages are exhausted.
        platform, enclave = make_enclave(epc_usable_bytes=1 * MB)
        cache = L1ResultCache(enclave, max_entries=64)
        with enclave.ecall("test"):
            for i in range(48):
                cache.put(tag(i), bytes([i]) * (64 * KB))
            faults_before = platform.epc.fault_count
            for i in range(48):
                cache.get(tag(i))
            assert platform.epc.fault_count - faults_before >= 48


class TestRuntimeIntegration:
    def test_repeat_tag_served_without_store_roundtrip(self):
        d = Deployment(seed=b"l1-runtime")
        app = d.create_application(
            "l1-app", make_libs(),
            RuntimeConfig(app_id="l1-app", l1_cache_entries=8),
        )
        dedup = app.deduplicable(DOUBLE_DESC)
        dedup(b"data")  # miss: computes and caches
        gets_after_first = d.store.stats.gets
        assert dedup(b"data") == double_bytes(b"data")
        assert d.store.stats.gets == gets_after_first  # no second GET
        assert app.runtime.stats.l1_hits == 1
        assert app.runtime.stats.hits == 1
        record = app.runtime.stats.records[-1]
        assert record.hit and record.l1_hit

    def test_verified_store_hit_populates_cache(self):
        d = Deployment(seed=b"l1-populate")
        app1 = d.create_application("producer", make_libs())
        app2 = d.create_application(
            "consumer", make_libs(),
            RuntimeConfig(app_id="consumer", l1_cache_entries=8),
        )
        d1 = app1.deduplicable(DOUBLE_DESC)
        d2 = app2.deduplicable(DOUBLE_DESC)
        d1(b"shared")
        app1.runtime.flush_puts()
        d2(b"shared")  # store hit -> verified -> cached
        gets = d.store.stats.gets
        d2(b"shared")  # L1 hit
        assert d.store.stats.gets == gets
        assert app2.runtime.stats.l1_hits == 1

    def test_poisoned_store_entry_never_enters_cache(self):
        # Same setup as the verification-fallback test, but with the L1
        # enabled: the poisoned bytes fail Fig. 3 verification, so they
        # must never be cached — later calls serve the *recomputed*
        # (correct) result from the L1.
        from repro.core.serialization import AnyParser, default_registry
        from repro.core.tag import derive_tag
        from repro.store.resultstore import StoreConfig

        d = Deployment(
            seed=b"l1-poisoned", store_config=StoreConfig(verify_blob_digest=False)
        )
        producer = d.create_application("producer", make_libs())
        victim = d.create_application(
            "victim", make_libs(),
            RuntimeConfig(app_id="victim", l1_cache_entries=8),
        )
        producer.deduplicable(DOUBLE_DESC)(b"data")
        producer.runtime.flush_puts()

        func_identity = victim.runtime.libraries.function_identity(DOUBLE_DESC)
        input_bytes = AnyParser(default_registry()).encode(b"data")
        poisoned_tag = derive_tag(func_identity, input_bytes)
        d.store.blobstore.tamper(d.store.blob_ref_of(poisoned_tag))

        dedup = victim.deduplicable(DOUBLE_DESC)
        out = dedup(b"data")
        assert out == double_bytes(b"data")
        assert victim.runtime.stats.verification_failures == 1
        # The recomputed result was cached; the poisoned blob was not.
        assert dedup(b"data") == double_bytes(b"data")
        assert victim.runtime.stats.l1_hits == 1
        assert victim.runtime.stats.verification_failures == 1  # no new failure
