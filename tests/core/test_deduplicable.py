"""The Deduplicable API: the 2-LoC adoption story of §IV-C / Fig. 4."""

import pytest

from repro import Deployment, FunctionDescription, TrustedLibrary, TrustedLibraryRegistry
from repro.errors import DedupError
from tests.conftest import DOUBLE_DESC, double_bytes, make_libs


class TestTwoLineAdoption:
    def test_two_line_adoption(self, app):
        """E7 (DESIGN.md): marking a function takes exactly two lines."""
        dedup_double = app.deduplicable(DOUBLE_DESC)   # line 1
        result = dedup_double(b"input data")           # line 2
        assert result == double_bytes(b"input data")

    def test_used_as_normal_repeatedly(self, dedup_double, app):
        for payload in (b"a", b"b", b"a"):
            assert dedup_double(payload) == double_bytes(payload)
        assert app.runtime.stats.calls == 3


class TestMultiArgument:
    @pytest.fixture
    def concat_app(self):
        def concat(prefix: bytes, count: int) -> bytes:
            return prefix * count

        libs = TrustedLibraryRegistry()
        libs.register(TrustedLibrary("strkit", "1.0").add("bytes concat(bytes,int)", concat))
        deployment = Deployment(seed=b"multi-arg")
        return deployment.create_application("multi", libs)

    def test_multi_arg_call(self, concat_app):
        d = concat_app.deduplicable(FunctionDescription("strkit", "1.0", "bytes concat(bytes,int)"))
        assert d(b"ab", 3) == b"ababab"
        concat_app.runtime.flush_puts()
        assert d(b"ab", 3) == b"ababab"
        assert concat_app.runtime.stats.hits == 1

    def test_argument_order_matters_in_tag(self, concat_app):
        d = concat_app.deduplicable(FunctionDescription("strkit", "1.0", "bytes concat(bytes,int)"))
        d(b"ab", 2)
        concat_app.runtime.flush_puts()
        d(b"ab", 3)
        assert concat_app.runtime.stats.hits == 0

    def test_zero_args_rejected(self, concat_app):
        d = concat_app.deduplicable(FunctionDescription("strkit", "1.0", "bytes concat(bytes,int)"))
        with pytest.raises(TypeError):
            d()


class TestOwnershipCheck:
    def test_creating_for_unlinked_function_fails_fast(self, app):
        with pytest.raises(DedupError):
            app.deduplicable(FunctionDescription("not-linked", "1.0", "f()"))


class TestExplicitParsers:
    def test_explicit_result_parser(self, deployment):
        from repro.core.serialization import IntParser, MappingParser, TextParser

        def census(text: str) -> dict:
            return {word: len(word) for word in text.split()}

        libs = TrustedLibraryRegistry()
        libs.register(TrustedLibrary("census", "1.0").add("dict census(str)", census))
        app = deployment.create_application("census-app", libs)
        d = app.deduplicable(
            FunctionDescription("census", "1.0", "dict census(str)"),
            input_parser=TextParser(),
            result_parser=MappingParser(IntParser()),
        )
        out = d("hello wide world")
        app.runtime.flush_puts()
        assert d("hello wide world") == out == {"hello": 5, "wide": 4, "world": 5}
        assert app.runtime.stats.hits == 1
