"""Tag and locking-hash derivation."""

import pytest

from repro.core.tag import TAG_SIZE, derive_locking_hash, derive_tag
from repro.sgx.cost_model import SimClock


class TestTag:
    def test_deterministic(self):
        assert derive_tag(b"f", b"m") == derive_tag(b"f", b"m")

    def test_size(self):
        assert len(derive_tag(b"f", b"m")) == TAG_SIZE

    def test_function_and_input_both_matter(self):
        base = derive_tag(b"f", b"m")
        assert base != derive_tag(b"g", b"m")
        assert base != derive_tag(b"f", b"n")

    def test_boundary_ambiguity_resolved(self):
        # ("fu", "ncm") vs ("fun", "cm") must not collide.
        assert derive_tag(b"fu", b"ncm") != derive_tag(b"fun", b"cm")

    def test_clock_charged_linearly(self):
        clock = SimClock()
        derive_tag(b"f" * 32, b"m" * 1000, clock)
        small = clock.cycles
        clock.reset()
        derive_tag(b"f" * 32, b"m" * 100000, clock)
        assert clock.cycles > small


class TestLockingHash:
    def test_challenge_matters(self):
        a = derive_locking_hash(b"f", b"m", b"r1")
        b = derive_locking_hash(b"f", b"m", b"r2")
        assert a != b

    def test_differs_from_tag(self):
        # Domain separation: h must never equal t even for equal inputs.
        assert derive_locking_hash(b"f", b"m", b"") != derive_tag(b"f", b"m")

    def test_clock_charged(self):
        clock = SimClock()
        derive_locking_hash(b"f", b"m", b"r", clock)
        assert clock.cycles > 0
