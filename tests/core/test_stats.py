"""Runtime statistics bookkeeping."""

import pytest

from repro.core.stats import CallRecord, RuntimeStats


def record(hit: bool, wall=0.1, sim=0.01) -> CallRecord:
    return CallRecord(
        description="f", hit=hit, input_bytes=10, result_bytes=20,
        wall_seconds=wall, sim_seconds=sim,
    )


class TestRuntimeStats:
    def test_empty(self):
        stats = RuntimeStats()
        assert stats.hit_rate() == 0.0
        assert stats.total_wall_seconds() == 0.0

    def test_counting(self):
        stats = RuntimeStats()
        stats.record_call(record(True))
        stats.record_call(record(False))
        stats.record_call(record(True))
        assert stats.calls == 3
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.hit_rate() == 2 / 3

    def test_time_totals(self):
        stats = RuntimeStats()
        stats.record_call(record(True, wall=0.5, sim=0.05))
        stats.record_call(record(False, wall=1.5, sim=0.15))
        assert stats.total_wall_seconds() == 2.0
        assert abs(stats.total_sim_seconds() - 0.2) < 1e-12

    def test_records_preserved_in_order(self):
        stats = RuntimeStats()
        stats.record_call(record(False))
        stats.record_call(record(True))
        assert [r.hit for r in stats.records] == [False, True]


class TestSnapshot:
    def test_snapshot_is_flat_and_complete(self):
        stats = RuntimeStats()
        stats.record_call(record(True))
        stats.record_call(record(False))
        stats.puts_sent = 2
        stats.puts_accepted = 1
        stats.puts_rejected = 1
        snap = stats.snapshot()
        assert snap["calls"] == 2
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["hit_rate"] == 0.5
        assert snap["puts_sent"] == 2
        assert snap["puts_accepted"] == 1
        assert snap["puts_rejected"] == 1
        assert "records" not in snap  # flat counters only
        for value in snap.values():
            assert isinstance(value, (int, float))

    def test_snapshot_matches_counters_after_more_calls(self):
        stats = RuntimeStats()
        snap0 = stats.snapshot()
        assert snap0["calls"] == 0 and snap0["hit_rate"] == 0.0
        for hit in (True, True, False):
            stats.record_call(record(hit))
        snap1 = stats.snapshot()
        assert snap1["calls"] == 3
        assert snap1["hit_rate"] == pytest.approx(2 / 3)
        assert snap0["calls"] == 0  # snapshots are detached copies

    def test_runtime_snapshot_adds_queue_depth(self, tmp_path):
        from repro import Deployment
        from tests.conftest import DOUBLE_DESC, make_libs

        d = Deployment(seed=b"snap")
        app = d.create_application("snap-app", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        dedup(b"payload")
        snap = app.runtime.snapshot()
        assert snap["pending_puts"] == 1  # async PUT not yet flushed
        app.runtime.flush_puts()
        snap = app.runtime.snapshot()
        assert snap["pending_puts"] == 0
        assert snap["puts_accepted"] == 1
        assert snap["puts_unacknowledged"] == 0
