"""Runtime statistics bookkeeping."""

from repro.core.stats import CallRecord, RuntimeStats


def record(hit: bool, wall=0.1, sim=0.01) -> CallRecord:
    return CallRecord(
        description="f", hit=hit, input_bytes=10, result_bytes=20,
        wall_seconds=wall, sim_seconds=sim,
    )


class TestRuntimeStats:
    def test_empty(self):
        stats = RuntimeStats()
        assert stats.hit_rate() == 0.0
        assert stats.total_wall_seconds() == 0.0

    def test_counting(self):
        stats = RuntimeStats()
        stats.record_call(record(True))
        stats.record_call(record(False))
        stats.record_call(record(True))
        assert stats.calls == 3
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.hit_rate() == 2 / 3

    def test_time_totals(self):
        stats = RuntimeStats()
        stats.record_call(record(True, wall=0.5, sim=0.05))
        stats.record_call(record(False, wall=1.5, sim=0.15))
        assert stats.total_wall_seconds() == 2.0
        assert abs(stats.total_sim_seconds() - 0.2) < 1e-12

    def test_records_preserved_in_order(self):
        stats = RuntimeStats()
        stats.record_call(record(False))
        stats.record_call(record(True))
        assert [r.hit for r in stats.records] == [False, True]
