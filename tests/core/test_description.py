"""Function descriptions, trusted libraries, and code identity."""

import pytest

from repro.core.description import (
    FunctionDescription,
    TrustedLibrary,
    TrustedLibraryRegistry,
    code_fingerprint,
)
from repro.errors import DedupError


def func_a(data: bytes) -> bytes:
    return data + b"a"


def func_a_clone(data: bytes) -> bytes:
    return data + b"a"


def func_b(data: bytes) -> bytes:
    return data + b"b"


def make_registry():
    libs = TrustedLibraryRegistry()
    libs.register(TrustedLibrary("libx", "1.0").add("f(bytes)", func_a))
    return libs


DESC = FunctionDescription("libx", "1.0", "f(bytes)")


class TestDescription:
    def test_canonical_bytes_deterministic(self):
        assert DESC.canonical_bytes() == FunctionDescription("libx", "1.0", "f(bytes)").canonical_bytes()

    def test_fields_separate(self):
        assert DESC.canonical_bytes() != FunctionDescription("libx", "1.1", "f(bytes)").canonical_bytes()
        assert DESC.canonical_bytes() != FunctionDescription("liby", "1.0", "f(bytes)").canonical_bytes()

    def test_str_matches_paper_shape(self):
        assert str(DESC) == '("libx", "1.0", f(bytes))'


class TestCodeFingerprint:
    def test_identical_code_identical_fingerprint(self):
        # Two functions with the same bytecode fingerprint identically —
        # this is what makes *cross-application* deduplication work.
        assert code_fingerprint(func_a) == code_fingerprint(func_a_clone)

    def test_different_code_differs(self):
        assert code_fingerprint(func_a) != code_fingerprint(func_b)

    def test_builtin_fallback(self):
        assert code_fingerprint(len) != code_fingerprint(abs)


class TestRegistry:
    def test_lookup(self):
        assert make_registry().lookup(DESC) is func_a

    def test_missing_library(self):
        with pytest.raises(DedupError, match="does not link"):
            make_registry().lookup(FunctionDescription("ghost", "1.0", "f(bytes)"))

    def test_missing_version(self):
        with pytest.raises(DedupError):
            make_registry().lookup(FunctionDescription("libx", "9.9", "f(bytes)"))

    def test_missing_signature(self):
        with pytest.raises(DedupError, match="no function"):
            make_registry().lookup(FunctionDescription("libx", "1.0", "other()"))

    def test_duplicate_library_rejected(self):
        libs = make_registry()
        with pytest.raises(DedupError):
            libs.register(TrustedLibrary("libx", "1.0"))

    def test_duplicate_signature_rejected(self):
        with pytest.raises(DedupError):
            TrustedLibrary("l", "1").add("f", func_a).add("f", func_b)


class TestFunctionIdentity:
    def test_same_across_applications(self):
        # Two independent registries (two applications) linking the same
        # library derive the same identity.
        libs1 = make_registry()
        libs2 = TrustedLibraryRegistry()
        libs2.register(TrustedLibrary("libx", "1.0").add("f(bytes)", func_a_clone))
        assert libs1.function_identity(DESC) == libs2.function_identity(DESC)

    def test_different_code_same_description_differs(self):
        # An app that claims the description but links different code
        # derives a different identity (cannot share results).
        libs1 = make_registry()
        libs2 = TrustedLibraryRegistry()
        libs2.register(TrustedLibrary("libx", "1.0").add("f(bytes)", func_b))
        assert libs1.function_identity(DESC) != libs2.function_identity(DESC)

    def test_version_matters(self):
        libs = TrustedLibraryRegistry()
        libs.register(TrustedLibrary("libx", "1.0").add("f(bytes)", func_a))
        libs.register(TrustedLibrary("libx", "2.0").add("f(bytes)", func_a))
        id1 = libs.function_identity(FunctionDescription("libx", "1.0", "f(bytes)"))
        id2 = libs.function_identity(FunctionDescription("libx", "2.0", "f(bytes)"))
        assert id1 != id2

    def test_code_identity_covers_all_libraries(self):
        libs1 = make_registry()
        libs2 = make_registry()
        assert libs1.code_identity() == libs2.code_identity()
        libs2.register(TrustedLibrary("extra", "0.1").add("g()", func_b))
        assert libs1.code_identity() != libs2.code_identity()
