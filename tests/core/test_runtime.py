"""DedupRuntime: the full Algorithm 1 / Algorithm 2 control flow."""

import pytest

from repro import Deployment, RuntimeConfig
from repro.core.runtime import DedupRuntime
from repro.core.tag import derive_tag
from tests.conftest import DOUBLE_DESC, double_bytes, make_libs


class TestMissThenHit:
    def test_initial_then_subsequent(self, app, dedup_double):
        out1 = dedup_double(b"payload")
        assert out1 == double_bytes(b"payload")
        app.runtime.flush_puts()
        out2 = dedup_double(b"payload")
        assert out2 == out1
        stats = app.runtime.stats
        assert stats.misses == 1 and stats.hits == 1

    def test_different_inputs_both_miss(self, app, dedup_double):
        dedup_double(b"a")
        app.runtime.flush_puts()
        dedup_double(b"b")
        assert app.runtime.stats.misses == 2

    def test_hit_is_cheaper_than_miss_for_slow_functions(self, deployment):
        # The paper's regime: a time-consuming function with a small
        # result benefits; a trivial function would not (§V-B).
        import hashlib

        from repro import FunctionDescription, TrustedLibrary, TrustedLibraryRegistry

        def slow_digest(data: bytes) -> bytes:
            out = data
            for _ in range(3000):
                out = hashlib.sha256(out).digest()
            return out

        libs = TrustedLibraryRegistry()
        libs.register(TrustedLibrary("slowlib", "1.0").add("digest(bytes)", slow_digest))
        app = deployment.create_application("slow-app", libs)
        d = app.deduplicable(FunctionDescription("slowlib", "1.0", "digest(bytes)"))
        d(b"payload")
        app.runtime.flush_puts()
        d(b"payload")
        miss, hit = app.runtime.stats.records
        assert hit.hit and not miss.hit
        assert hit.sim_seconds < miss.sim_seconds

    def test_records_capture_sizes(self, app, dedup_double):
        dedup_double(b"12345")
        record = app.runtime.stats.records[0]
        assert record.input_bytes > 0
        assert record.result_bytes > 0
        assert not record.hit


class TestCrossApplication:
    def test_second_app_reuses_result(self, deployment):
        app1 = deployment.create_application("app-1", make_libs())
        app2 = deployment.create_application("app-2", make_libs())
        d1 = app1.deduplicable(DOUBLE_DESC)
        d2 = app2.deduplicable(DOUBLE_DESC)
        assert d1(b"shared input") == d2(b"shared input")
        app1.runtime.flush_puts()
        assert app2.runtime.stats.hits == 0  # put was pending when it ran
        assert d2(b"shared input") == double_bytes(b"shared input")
        assert app2.runtime.stats.hits == 1

    def test_different_code_does_not_share(self, deployment):
        from repro import FunctionDescription, TrustedLibrary, TrustedLibraryRegistry

        def double_variant(data: bytes) -> bytes:
            return bytes(data) + bytes(data)  # different bytecode

        libs_b = TrustedLibraryRegistry()
        libs_b.register(
            TrustedLibrary("testlib", "1.0").add("bytes double(bytes)", double_variant)
        )
        app1 = deployment.create_application("honest", make_libs())
        app2 = deployment.create_application("variant", libs_b)
        d1 = app1.deduplicable(DOUBLE_DESC)
        d2 = app2.deduplicable(DOUBLE_DESC)
        d1(b"input")
        app1.runtime.flush_puts()
        d2(b"input")
        # Same description, different code -> different tag -> miss.
        assert app2.runtime.stats.hits == 0


class TestAsyncPut:
    def test_pending_until_flush(self, app, dedup_double):
        dedup_double(b"data")
        assert app.runtime.pending_put_count == 1
        flushed = app.runtime.flush_puts()
        assert flushed == 1
        assert app.runtime.pending_put_count == 0
        assert app.runtime.stats.puts_accepted == 1

    def test_unflushed_put_means_self_miss(self, app, dedup_double):
        dedup_double(b"data")
        dedup_double(b"data")  # PUT still queued -> miss again
        assert app.runtime.stats.misses == 2

    def test_sync_put_mode(self, deployment):
        app = deployment.create_application(
            "sync-app", make_libs(), RuntimeConfig(app_id="sync-app", async_put=False)
        )
        d = app.deduplicable(DOUBLE_DESC)
        d(b"data")
        assert app.runtime.pending_put_count == 0
        assert app.runtime.stats.puts_accepted == 1
        d(b"data")
        assert app.runtime.stats.hits == 1


class TestVerificationFallback:
    def test_poisoned_store_falls_back_to_compute(self, deployment):
        # Disable the store-side digest so the poisoned bytes reach the
        # application; its AEAD check must catch them (Fig. 3 -> false).
        from repro.store.resultstore import StoreConfig

        poisoned = Deployment(
            seed=b"poisoned", store_config=StoreConfig(verify_blob_digest=False)
        )
        app = poisoned.create_application("victim", make_libs())
        d = app.deduplicable(DOUBLE_DESC)
        d(b"data")
        app.runtime.flush_puts()
        func_identity = app.runtime.libraries.function_identity(DOUBLE_DESC)
        from repro.core.serialization import AnyParser, default_registry

        input_bytes = AnyParser(default_registry()).encode(b"data")
        tag = derive_tag(func_identity, input_bytes)
        poisoned.store.blobstore.tamper(poisoned.store.blob_ref_of(tag))
        out = d(b"data")
        assert out == double_bytes(b"data")  # still correct
        assert app.runtime.stats.verification_failures == 1
        assert app.runtime.stats.hits == 0


class TestDedupDisabled:
    def test_baseline_mode_never_talks_to_store(self, deployment):
        app = deployment.create_application(
            "baseline", make_libs(), RuntimeConfig(app_id="b", dedup_enabled=False)
        )
        d = app.deduplicable(DOUBLE_DESC)
        d(b"data")
        d(b"data")
        assert deployment.store.stats.gets == 0
        assert deployment.store.stats.puts == 0
        assert app.runtime.stats.misses == 2


class TestEnclaveInteraction:
    def test_calls_enter_and_leave_enclave(self, app, dedup_double):
        before_ecalls = app.enclave.ecall_count
        before_ocalls = app.enclave.ocall_count
        dedup_double(b"data")
        assert app.enclave.ecall_count > before_ecalls
        assert app.enclave.ocall_count > before_ocalls
        assert not app.enclave.inside  # balanced

    def test_unknown_description_raises(self, app):
        from repro import FunctionDescription
        from repro.errors import DedupError

        with pytest.raises(DedupError):
            app.runtime.execute(
                FunctionDescription("ghostlib", "0", "f()"), b"data"
            )
