"""Pipelined runtime integration: identical results, coalescing,
flush/close semantics, and the bounded async PUT queue.

Everything here runs the full public path (``repro.connect`` +
``Session.enable_pipeline``) against a sharded deployment, comparing the
pipelined engine's observable behaviour to the serial client's.
"""

import pytest

import repro
from repro.core.runtime import RuntimeConfig
from repro.errors import DedupError


def make_session(shards=4, seed=b"t-pipeline", **kwargs):
    return repro.connect(
        shards=shards, replication_factor=1, seed=seed, tracing=False,
        **kwargs,
    )


def mark_kernel(session):
    @session.mark(version="1.0")
    def pipeline_kernel(data: bytes) -> bytes:
        return bytes(b ^ 0x3C for b in data)
    return pipeline_kernel


def distinct_inputs(n, stride=1):
    return [(i * stride).to_bytes(4, "big") * 32 for i in range(n)]


class TestIdenticalResults:
    def test_warm_batch_matches_serial_path_exactly(self):
        session = make_session()
        kernel = mark_kernel(session)
        inputs = distinct_inputs(24)
        kernel.map(inputs)
        session.flush_puts()

        serial = session.sibling("serial")
        pipelined = session.sibling("pipelined")
        pipelined.enable_pipeline(depth=8, workers=4)
        a = serial.execute_many_results(kernel.description, inputs)
        b = pipelined.execute_many_results(kernel.description, inputs)
        assert [r.value for r in a] == [r.value for r in b]
        assert [r.hit for r in a] == [r.hit for r in b]
        sa, sb = serial.runtime.stats, pipelined.runtime.stats
        assert (sa.hits, sa.misses, sa.degraded) == (sb.hits, sb.misses, sb.degraded)

    def test_cold_batch_matches_serial_path_exactly(self):
        session = make_session(seed=b"t-pipeline-cold")
        kernel = mark_kernel(session)
        inputs = distinct_inputs(12, stride=7)
        serial = session.sibling("serial")
        pipelined = session.sibling("pipelined")
        pipelined.enable_pipeline(depth=8, workers=4)
        # Two separate deployments would dedup differently; here both
        # siblings run cold against tags nothing has stored yet, so the
        # second runner hits what the first just flushed.  Compare each
        # against plain recomputation instead.
        expected = [bytes(b ^ 0x3C for b in data) for data in inputs]
        assert [
            r.value
            for r in pipelined.execute_many_results(kernel.description, inputs)
        ] == expected
        stats = pipelined.runtime.stats
        assert stats.hits + stats.misses + stats.degraded == stats.calls

    def test_engine_accounting_reports_overlap_on_warm_batches(self):
        session = make_session(seed=b"t-pipeline-overlap")
        kernel = mark_kernel(session)
        inputs = distinct_inputs(32)
        kernel.map(inputs)
        session.flush_puts()
        reader = session.sibling("reader")
        engine = reader.enable_pipeline(depth=8, workers=4)
        reader.execute_many_results(kernel.description, inputs)
        assert engine.overlap_cycles_saved > 0
        assert engine.makespan_cycles <= engine.serial_cycles


class TestCoalescing:
    def test_duplicate_tags_share_one_store_round_trip(self):
        session = make_session(seed=b"t-coalesce")
        kernel = mark_kernel(session)
        burst = [b"\x01\x02\x03\x04" * 32] * 10
        kernel.map(burst[:1])
        session.flush_puts()
        reader = session.sibling("reader")
        reader.enable_pipeline(depth=8, workers=4)
        gets0 = sum(
            node.store.stats.gets
            for node in session.deployment.cluster.shards.values()
        )
        results = reader.execute_many_results(kernel.description, burst)
        gets = sum(
            node.store.stats.gets
            for node in session.deployment.cluster.shards.values()
        ) - gets0
        assert gets == 1  # single-flight: one trip for ten duplicates
        assert results[0].source == "store"
        assert all(r.source == "coalesced" for r in results[1:])
        assert all(r.value == results[0].value for r in results)
        assert reader.runtime.stats.coalesced_hits == 9
        assert reader.runtime.stats.hits == 10

    def test_cold_duplicates_compute_once_and_put_once(self):
        session = make_session(seed=b"t-coalesce-cold")
        kernel = mark_kernel(session)
        burst = [b"\x09\x08\x07\x06" * 32] * 6
        reader = session.sibling("reader")
        reader.enable_pipeline(depth=8, workers=4)
        results = reader.execute_many_results(kernel.description, burst)
        assert results[0].source == "computed"
        assert all(r.source == "coalesced" for r in results[1:])
        assert reader.runtime.pending_put_count == 1  # one PUT for the tag
        reader.flush_puts()
        assert reader.runtime.stats.puts_sent == 1

    def test_coalesce_off_takes_one_trip_per_call(self):
        session = make_session(seed=b"t-coalesce-off")
        kernel = mark_kernel(session)
        burst = [b"\x11\x22\x33\x44" * 32] * 5
        kernel.map(burst[:1])
        session.flush_puts()
        reader = session.sibling("reader")
        reader.enable_pipeline(depth=8, workers=4, coalesce=False)
        gets0 = sum(
            node.store.stats.gets
            for node in session.deployment.cluster.shards.values()
        )
        results = reader.execute_many_results(kernel.description, burst)
        gets = sum(
            node.store.stats.gets
            for node in session.deployment.cluster.shards.values()
        ) - gets0
        assert gets == 5
        assert all(r.source == "store" for r in results)
        assert reader.runtime.stats.coalesced_hits == 0


class TestDegradedPath:
    def test_dead_cluster_degrades_every_item_identically(self):
        session = make_session(
            seed=b"t-degrade",
            runtime_config=RuntimeConfig(degrade_on_store_failure=True),
        )
        kernel = mark_kernel(session)
        inputs = distinct_inputs(8)
        engine = session.enable_pipeline(depth=8, workers=4)
        for sid in list(session.cluster.shard_ids):
            session.cluster.kill_shard(sid)
        results = kernel.map_results(inputs)
        expected = [bytes(b ^ 0x3C for b in data) for data in inputs]
        assert [r.value for r in results] == expected
        assert all(r.degraded for r in results)
        stats = session.runtime.stats
        assert stats.degraded == len(inputs)
        assert stats.hits + stats.misses + stats.degraded == stats.calls
        assert engine.rounds > 0  # the dead cluster still went through it


class TestFlushAndClose:
    def test_close_flushes_settles_and_refuses_new_async_puts(self):
        session = make_session(seed=b"t-close")
        kernel = mark_kernel(session)
        session.enable_pipeline(depth=8, workers=4)
        kernel.map(distinct_inputs(6))
        assert session.runtime.pending_put_count > 0
        flushed = session.close()
        assert flushed == 6
        assert session.runtime.closed
        assert session.runtime.pending_put_count == 0
        with pytest.raises(DedupError):
            kernel.map(distinct_inputs(2, stride=99))  # would queue a PUT
        assert session.close() == 0  # idempotent

    def test_closed_runtime_still_serves_store_hits(self):
        session = make_session(seed=b"t-close-hits")
        kernel = mark_kernel(session)
        inputs = distinct_inputs(4)
        kernel.map(inputs)
        session.close()
        results = kernel.map_results(inputs)
        assert all(r.hit for r in results)

    def test_bounded_queue_applies_backpressure(self):
        session = make_session(
            seed=b"t-backpressure",
            runtime_config=RuntimeConfig(
                put_queue_entries=4, put_flush_batch=2
            ),
        )
        kernel = mark_kernel(session)
        session.enable_pipeline(depth=8, workers=4)
        for i, data in enumerate(distinct_inputs(16, stride=3)):
            kernel(data)
            assert session.runtime.pending_put_count < 4 + 1
        assert session.runtime.stats.puts_sent > 0  # drains actually fired


class TestSessionSurface:
    def test_enable_pipeline_registers_engine_metrics(self):
        session = make_session(seed=b"t-metrics")
        kernel = mark_kernel(session)
        engine = session.enable_pipeline(depth=8, workers=4)
        kernel.map(distinct_inputs(4))
        snap = session.snapshot()
        assert snap["engine.depth"] == 8
        assert snap["engine.workers"] == 4
        assert snap["engine.rounds"] == engine.rounds
        assert "engine.sim_seconds_total" in snap

    def test_single_machine_results_match_serial_sibling(self):
        # Fig. 1 topology: store and app share one machine/clock, so the
        # wire rounds cannot overlap (one lane); only the in-enclave
        # worker-lane regions (multi-core) may report overlap — and the
        # results must still be byte-identical to the serial client's.
        session = repro.connect(seed=b"t-single-pipeline", tracing=False)
        kernel = mark_kernel(session)
        inputs = distinct_inputs(8)
        kernel.map(inputs)
        session.flush_puts()
        serial = session.sibling("serial")
        expected = [
            r.value
            for r in serial.execute_many_results(kernel.description, inputs)
        ]
        pipelined = session.sibling("pipelined")
        engine = pipelined.enable_pipeline(depth=8, workers=4)
        results = pipelined.execute_many_results(kernel.description, inputs)
        assert [r.value for r in results] == expected
        assert all(r.hit for r in results)
        assert engine.rounds > 0
        assert engine.makespan_cycles <= engine.serial_cycles
