"""The decorator front end for self-defined functions."""

import pytest

from repro import Deployment
from repro.core.decorator import deduplicable_marker
from tests.conftest import make_libs


@pytest.fixture
def marked_app(deployment):
    return deployment.create_application("decorated", make_libs())


class TestDecorator:
    def test_decorated_function_deduplicates(self, deployment, marked_app):
        mark = deduplicable_marker(marked_app)

        @mark(version="1.0")
        def triple(data: bytes) -> bytes:
            return data * 3

        assert triple(b"ab") == b"ababab"
        marked_app.runtime.flush_puts()
        assert triple(b"ab") == b"ababab"
        assert marked_app.runtime.stats.hits == 1

    def test_wrapper_exposes_original(self, marked_app):
        mark = deduplicable_marker(marked_app)

        @mark()
        def shout(text: str) -> str:
            return text.upper()

        assert shout.original("hi") == "HI"
        assert shout.__name__ == "shout"
        assert shout.description.family.startswith("app:")

    def test_versions_are_isolated(self, deployment, marked_app):
        mark = deduplicable_marker(marked_app)

        def body(data: bytes) -> bytes:
            return data[::-1]

        v1 = mark(version="1.0", signature="rev(bytes)")(body)
        v2 = mark(version="2.0", signature="rev(bytes)")(body)
        v1(b"abc")
        marked_app.runtime.flush_puts()
        v2(b"abc")
        # Same code, different declared versions: no sharing.
        assert marked_app.runtime.stats.hits == 0

    def test_cross_application_sharing_of_identical_functions(self, deployment):
        app_a = deployment.create_application("deco-a", make_libs())
        app_b = deployment.create_application("deco-b", make_libs())

        def make(app):
            mark = deduplicable_marker(app)

            @mark(version="1.0", signature="fold(bytes)")
            def fold(data: bytes) -> bytes:
                return bytes(b ^ 0x5A for b in data)

            return fold

        fold_a, fold_b = make(app_a), make(app_b)
        out = fold_a(b"shared")
        app_a.runtime.flush_puts()
        assert fold_b(b"shared") == out
        assert app_b.runtime.stats.hits == 1

    def test_multi_argument_decorated(self, marked_app):
        mark = deduplicable_marker(marked_app)

        @mark(version="1.0")
        def repeat(chunk: bytes, times: int) -> bytes:
            return chunk * times

        assert repeat(b"xy", 3) == b"xyxyxy"
        marked_app.runtime.flush_puts()
        repeat(b"xy", 3)
        assert marked_app.runtime.stats.hits == 1
