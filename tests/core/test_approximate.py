"""Approximate (similarity) deduplication extension."""

import pytest

from repro import Deployment, FunctionDescription, TrustedLibrary, TrustedLibraryRegistry
from repro.core.approximate import (
    ApproximateDeduplicable,
    band_values,
    hamming_distance,
    shingle_features,
    simhash64,
)
from repro.errors import DedupError
from repro.workloads import synthetic_text


def word_count(data: bytes) -> int:
    return len(data.split())


def make_app(deployment):
    libs = TrustedLibraryRegistry()
    libs.register(TrustedLibrary("nlplib", "1.0").add("int word_count(bytes)", word_count))
    return deployment.create_application("approx-app", libs)


DESC = FunctionDescription("nlplib", "1.0", "int word_count(bytes)")


def perturb(data: bytes, edits: int, seed: int = 1) -> bytes:
    """Apply a few byte substitutions — a 'similar' input."""
    import numpy as np

    rng = np.random.default_rng(seed)
    out = bytearray(data)
    for _ in range(edits):
        out[int(rng.integers(0, len(out)))] = ord("x")
    return bytes(out)


class TestSimHash:
    def test_identical_inputs_identical_fingerprints(self):
        f = shingle_features(b"the quick brown fox jumps over everything")
        assert simhash64(f) == simhash64(list(f))

    def test_similar_inputs_close_fingerprints(self):
        base = synthetic_text(4096, seed=3)
        similar = perturb(base, edits=8)
        different = synthetic_text(4096, seed=99)
        d_similar = hamming_distance(
            simhash64(shingle_features(base)), simhash64(shingle_features(similar))
        )
        d_different = hamming_distance(
            simhash64(shingle_features(base)), simhash64(shingle_features(different))
        )
        assert d_similar < d_different
        assert d_similar <= 8

    def test_empty_input(self):
        assert simhash64([]) == 0
        assert shingle_features(b"") == []

    def test_short_input_single_feature(self):
        assert shingle_features(b"ab", k=4) == [b"ab"]

    def test_band_split_covers_fingerprint(self):
        fingerprint = 0x0123456789ABCDEF
        bands = band_values(fingerprint, 4)
        rebuilt = 0
        for i, value in enumerate(bands):
            rebuilt |= value << (i * 16)
        assert rebuilt == fingerprint

    def test_invalid_bands(self):
        with pytest.raises(DedupError):
            band_values(0, 7)

    def test_invalid_shingle_size(self):
        with pytest.raises(DedupError):
            shingle_features(b"abc", k=0)


class TestApproximateDedup:
    def test_identical_input_hits(self, deployment):
        app = make_app(deployment)
        approx = ApproximateDeduplicable(app.runtime, DESC)
        base = synthetic_text(2048, seed=5)
        first = approx(base)
        second = approx(base)
        assert first == second == word_count(base)
        assert approx.stats.exact_band_hits == 1

    def test_similar_input_reuses_result(self, deployment):
        app = make_app(deployment)
        approx = ApproximateDeduplicable(app.runtime, DESC)
        base = synthetic_text(4096, seed=6)
        similar = perturb(base, edits=4)
        exact = approx(base)
        reused = approx(similar)
        # The reused result is the *base* input's result — approximate by
        # construction, close for an error-resilient metric.
        assert approx.stats.exact_band_hits == 1
        assert abs(reused - word_count(similar)) <= 8
        assert reused == exact

    def test_dissimilar_input_misses(self, deployment):
        app = make_app(deployment)
        approx = ApproximateDeduplicable(app.runtime, DESC)
        approx(synthetic_text(2048, seed=7))
        approx(synthetic_text(2048, seed=777))
        assert approx.stats.misses == 2

    def test_exact_dedup_would_have_missed(self, deployment):
        # The motivating comparison: exact SPEED misses on the perturbed
        # input, the approximate extension hits.
        app = make_app(deployment)
        exact = app.deduplicable(DESC)
        approx = ApproximateDeduplicable(app.runtime, DESC)
        base = synthetic_text(4096, seed=8)
        similar = perturb(base, edits=4)

        exact(base)
        app.runtime.flush_puts()
        exact(similar)
        assert app.runtime.stats.hits == 0  # exact: miss

        approx(base)
        approx(similar)
        assert approx.stats.exact_band_hits == 1  # approximate: hit

    def test_cross_application_similarity_sharing(self, deployment):
        app_a = make_app(deployment)
        libs = TrustedLibraryRegistry()
        libs.register(TrustedLibrary("nlplib", "1.0").add("int word_count(bytes)", word_count))
        app_b = deployment.create_application("approx-b", libs)
        a = ApproximateDeduplicable(app_a.runtime, DESC)
        b = ApproximateDeduplicable(app_b.runtime, DESC)
        base = synthetic_text(4096, seed=9)
        a(base)
        b(perturb(base, edits=3, seed=2))
        assert b.stats.exact_band_hits == 1

    def test_multi_arg_rejected(self, deployment):
        app = make_app(deployment)
        approx = ApproximateDeduplicable(app.runtime, DESC)
        with pytest.raises(DedupError):
            approx(b"a", b"b")
