"""execute_many: batched Algorithms 1 & 2 with per-item semantics."""

import pytest

from repro import Deployment, RuntimeConfig
from repro.net.messages import ErrorMessage, PutResponse
from repro.net.transport import FaultInjector
from tests.conftest import DOUBLE_DESC, double_bytes, make_libs

INPUTS = [b"alpha", b"beta", b"gamma", b"alpha", b"delta", b"beta"]


def batch_app(seed: bytes, **config_kwargs):
    d = Deployment(seed=seed)
    app = d.create_application(
        "batch-app", make_libs(), RuntimeConfig(app_id="batch-app", **config_kwargs)
    )
    return d, app


class TestEquivalence:
    def test_results_identical_to_sequential_execute(self):
        d_seq, app_seq = batch_app(b"em-eq")
        sequential = [app_seq.runtime.execute(DOUBLE_DESC, v) for v in INPUTS]

        d_bat, app_bat = batch_app(b"em-eq")
        batched = app_bat.runtime.execute_many(DOUBLE_DESC, INPUTS)
        assert batched == sequential == [double_bytes(v) for v in INPUTS]

    def test_results_identical_with_l1_cache(self):
        d_seq, app_seq = batch_app(b"em-eq-l1")
        sequential = [app_seq.runtime.execute(DOUBLE_DESC, v) for v in INPUTS]

        d_bat, app_bat = batch_app(b"em-eq-l1", l1_cache_entries=8)
        batched = app_bat.runtime.execute_many(DOUBLE_DESC, INPUTS)
        assert batched == sequential
        # The repeated inputs were served by the L1 inside the batch.
        assert app_bat.runtime.stats.l1_hits == 2

    def test_second_batch_hits_after_flush(self):
        d, app = batch_app(b"em-hit")
        app.runtime.execute_many(DOUBLE_DESC, [b"a", b"b"])
        app.runtime.flush_puts()
        out = app.runtime.execute_many(DOUBLE_DESC, [b"a", b"b"])
        assert out == [double_bytes(b"a"), double_bytes(b"b")]
        assert app.runtime.stats.hits == 2
        assert app.runtime.stats.misses == 2

    def test_empty_batch(self):
        _, app = batch_app(b"em-empty")
        assert app.runtime.execute_many(DOUBLE_DESC, []) == []
        assert app.runtime.stats.calls == 0


class TestAmortization:
    def test_one_ecall_one_ocall_per_batch(self):
        d, app = batch_app(b"em-trans")
        ecalls0, ocalls0 = app.enclave.ecall_count, app.enclave.ocall_count
        app.runtime.execute_many(DOUBLE_DESC, [b"a", b"b", b"c", b"d"])
        assert app.enclave.ecall_count - ecalls0 == 1
        assert app.enclave.ocall_count - ocalls0 == 1  # one batched GET

    def test_fewer_transitions_than_sequential(self):
        d_seq, app_seq = batch_app(b"em-vs")
        for v in INPUTS:
            app_seq.runtime.execute(DOUBLE_DESC, v)
        seq_transitions = app_seq.enclave.transition_count

        d_bat, app_bat = batch_app(b"em-vs")
        app_bat.runtime.execute_many(DOUBLE_DESC, INPUTS)
        assert app_bat.enclave.transition_count * 3 <= seq_transitions

    def test_one_channel_record_for_batch_get(self):
        d, app = batch_app(b"em-rec")
        before = app.runtime.client.records_sent
        app.runtime.execute_many(DOUBLE_DESC, [b"a", b"b", b"c"])
        assert app.runtime.client.records_sent - before == 1

    def test_store_serves_batch_in_one_ecall(self):
        d, app = batch_app(b"em-store")
        store_ecalls0 = d.store.enclave.ecall_count
        app.runtime.execute_many(DOUBLE_DESC, [b"a", b"b", b"c"])
        assert d.store.enclave.ecall_count - store_ecalls0 == 1


class TestPerItemRecords:
    def test_each_item_gets_a_record(self):
        d, app = batch_app(b"em-rec2")
        app.runtime.execute_many(DOUBLE_DESC, [b"a", b"b", b"c"])
        stats = app.runtime.stats
        assert stats.calls == 3
        assert stats.batches == 1
        assert all(r.batch_size == 3 for r in stats.records)

    def test_shared_costs_split_evenly_and_sum_to_total(self):
        d, app = batch_app(b"em-sum")
        sim0 = d.clock.snapshot()
        app.runtime.execute_many(DOUBLE_DESC, [b"a", b"b", b"c", b"d"])
        total_sim = d.clock.since(sim0) / d.clock.params.cpu_freq_hz
        records = app.runtime.stats.records
        assert sum(r.sim_seconds for r in records) == pytest.approx(total_sim)

    def test_adaptive_observes_every_item(self):
        from repro.core.adaptive import AdaptiveDedupPolicy

        policy = AdaptiveDedupPolicy(min_observations=100)
        d, app = batch_app(b"em-adaptive", adaptive=policy)
        app.runtime.execute_many(DOUBLE_DESC, [b"a", b"b", b"c"])
        func_identity = app.runtime.libraries.function_identity(DOUBLE_DESC)
        assert policy.profile(func_identity).calls == 3


class TestSyncPut:
    def test_sync_mode_batches_the_puts_too(self):
        d, app = batch_app(b"em-sync", async_put=False)
        ocalls0 = app.enclave.ocall_count
        app.runtime.execute_many(DOUBLE_DESC, [b"a", b"b", b"c"])
        # One batched GET plus one batched PUT.
        assert app.enclave.ocall_count - ocalls0 == 2
        assert app.runtime.pending_put_count == 0
        assert app.runtime.stats.puts_accepted == 3


class TestFlushAccounting:
    def test_batched_flush_accounts_per_item(self):
        d, app = batch_app(b"em-flush")
        app.runtime.execute_many(DOUBLE_DESC, [b"a", b"b", b"c"])
        before = app.runtime.client.records_sent
        flushed = app.runtime.flush_puts()
        assert flushed == 3
        assert app.runtime.client.records_sent - before == 1  # one batch record
        stats = app.runtime.stats
        assert stats.puts_sent == 3
        assert stats.puts_accepted == 3
        assert stats.puts_rejected == 0
        assert app.runtime.puts_unacknowledged == 0

    def test_dropped_batch_response_stays_unacknowledged(self):
        # Store→app edge: 0 batch-GET response, 1 batch-PUT response
        # (dropped).  Indices count per (source, dest) edge.
        store_to_app = ("resultstore@machine-0", "batch-app@machine-0", 1)
        d = Deployment(seed=b"em-drop",
                       fault_injector=FaultInjector(drop_indices={store_to_app}))
        app = d.create_application("batch-app", make_libs())
        app.runtime.execute_many(DOUBLE_DESC, [b"a", b"b"])
        app.runtime.flush_puts()
        stats = app.runtime.stats
        assert stats.puts_sent == 2
        assert stats.puts_accepted == 0
        assert stats.puts_rejected == 0
        assert stats.puts_failed == 0
        assert app.runtime.puts_unacknowledged == 2
        # The PUTs themselves arrived: the next batch hits.
        assert app.runtime.execute_many(DOUBLE_DESC, [b"a", b"b"]) == [
            double_bytes(b"a"), double_bytes(b"b")
        ]
        assert stats.hits == 2

    def test_correlated_error_counts_as_failed(self):
        _, app = batch_app(b"em-err")
        runtime = app.runtime
        runtime._inflight_puts = {7: 3}
        runtime._account_put_responses(
            [ErrorMessage(code=500, detail="boom", request_id=7)]
        )
        assert runtime.stats.puts_failed == 3
        assert runtime.puts_unacknowledged == 0

    def test_uncorrelated_error_leaves_puts_unacknowledged(self):
        _, app = batch_app(b"em-err0")
        runtime = app.runtime
        runtime._inflight_puts = {7: 2}
        runtime._account_put_responses([ErrorMessage(code=400, detail="garbage")])
        assert runtime.stats.puts_failed == 0
        assert runtime.stats.puts_rejected == 0
        assert runtime.puts_unacknowledged == 2

    def test_foreign_response_not_miscounted(self):
        """Regression: a drained response that answers nothing we sent
        must not bump the rejected counter (the old accounting counted
        every non-accepted drained message as a rejection)."""
        _, app = batch_app(b"em-foreign")
        runtime = app.runtime
        runtime._account_put_responses(
            [PutResponse(accepted=False, reason="not ours", request_id=99)]
        )
        assert runtime.stats.puts_rejected == 0
