"""Property-based round trips for the argument/result parsers."""

from repro.core.serialization import (
    BytesParser,
    IntParser,
    ListParser,
    TextParser,
    TupleParser,
)

from ..proptest import byte_strings, for_all, integers, lists_of


class TestScalarParsers:
    @staticmethod
    @for_all(byte_strings(max_len=256), runs=80)
    def test_bytes_roundtrip(data):
        parser = BytesParser()
        assert parser.decode(parser.encode(data)) == data

    @staticmethod
    @for_all(byte_strings(max_len=64), runs=80)
    def test_text_roundtrip(data):
        parser = TextParser()
        text = data.hex()  # arbitrary-ish valid UTF-8
        assert parser.decode(parser.encode(text)) == text

    @staticmethod
    @for_all(integers(0, 2**70), runs=80)
    def test_int_roundtrip_positive(value):
        parser = IntParser()
        assert parser.decode(parser.encode(value)) == value

    @staticmethod
    @for_all(integers(0, 2**70), runs=80)
    def test_int_roundtrip_negative(value):
        parser = IntParser()
        assert parser.decode(parser.encode(-value)) == -value


class TestCompositeParsers:
    @staticmethod
    @for_all(byte_strings(max_len=32), integers(0, 2**40), runs=60)
    def test_tuple_roundtrip(data, number):
        parser = TupleParser(BytesParser(), IntParser())
        value = (data, number)
        assert parser.decode(parser.encode(value)) == value

    @staticmethod
    @for_all(lists_of(byte_strings(max_len=24), max_len=6), runs=60)
    def test_list_roundtrip(items):
        parser = ListParser(BytesParser())
        assert parser.decode(parser.encode(items)) == items

    @staticmethod
    @for_all(byte_strings(max_len=32), byte_strings(max_len=32), runs=40)
    def test_encoding_is_injective_for_tuples(a, b):
        # Distinct tuples must never share an encoding: tags are hashes
        # of encodings, so a collision here would be a dedup collision.
        parser = TupleParser(BytesParser(), BytesParser())
        if (a, b) != (b, a):
            assert parser.encode((a, b)) != parser.encode((b, a))
