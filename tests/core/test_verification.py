"""The Fig. 3 verification protocol: true/false verdicts, never raises."""

from repro.core.scheme import CrossAppScheme, ProtectedResult
from repro.core.tag import derive_tag
from repro.core.verification import verify_and_recover
from repro.crypto.drbg import HmacDrbg

FUNC = b"\x01" * 32
INPUT = b"input m"
RESULT = b"result res"


def protected_for(func=FUNC, inp=INPUT):
    scheme = CrossAppScheme()
    tag = derive_tag(func, inp)
    return tag, scheme.protect(func, inp, tag, RESULT, HmacDrbg(b"v").generate)


class TestVerification:
    def test_owner_verifies_true(self):
        tag, protected = protected_for()
        outcome = verify_and_recover(CrossAppScheme(), FUNC, INPUT, tag, protected)
        assert outcome.ok
        assert outcome.result_bytes == RESULT

    def test_non_owner_gets_false_not_exception(self):
        tag, protected = protected_for()
        outcome = verify_and_recover(
            CrossAppScheme(), FUNC, b"wrong input", tag, protected
        )
        assert not outcome.ok
        assert outcome.result_bytes == b""
        assert "rejected" in outcome.reason

    def test_poisoned_entry_gets_false(self):
        tag, protected = protected_for()
        poisoned = ProtectedResult(
            challenge=protected.challenge,
            wrapped_key=protected.wrapped_key,
            sealed_result=b"\x00" * len(protected.sealed_result),
        )
        outcome = verify_and_recover(CrossAppScheme(), FUNC, INPUT, tag, poisoned)
        assert not outcome.ok

    def test_malformed_entry_gets_false(self):
        tag, _ = protected_for()
        garbage = ProtectedResult(challenge=b"x", wrapped_key=b"y", sealed_result=b"z")
        outcome = verify_and_recover(CrossAppScheme(), FUNC, INPUT, tag, garbage)
        assert not outcome.ok
        assert "malformed" in outcome.reason
