"""The mini property runner itself: failure detection and shrinking."""

import pytest

from .proptest import byte_strings, for_all, integers, lists_of, sampled_from


class TestForAll:
    def test_passing_property_runs_clean(self):
        @for_all(integers(0, 100), runs=50)
        def prop(value):
            assert 0 <= value <= 100

        prop()  # no exception

    def test_failing_property_raises_with_seed_and_minimal(self):
        @for_all(integers(0, 1000), runs=200)
        def prop(value):
            assert value < 500

        with pytest.raises(AssertionError) as excinfo:
            prop()
        message = str(excinfo.value)
        assert "seed=" in message
        assert "minimal:" in message

    def test_shrinks_integer_counterexample_to_boundary(self):
        captured = {}

        @for_all(integers(0, 10_000), runs=300, seed=7)
        def prop(value):
            assert value < 1000

        with pytest.raises(AssertionError) as excinfo:
            prop()
        # Greedy shrinking walks down to the smallest failing value.
        minimal = int(str(excinfo.value).split("minimal:  [")[1].split("]")[0])
        assert minimal == 1000
        assert not captured

    def test_shrinks_bytes_towards_empty(self):
        @for_all(byte_strings(max_len=64), runs=200, seed=3)
        def prop(data):
            assert len(data) < 5

        with pytest.raises(AssertionError) as excinfo:
            prop()
        minimal = eval(str(excinfo.value).split("minimal:  [")[1].split("]")[0])
        assert len(minimal) == 5

    def test_seed_makes_failures_reproducible(self):
        def build():
            @for_all(integers(0, 10**9), runs=50, seed=11)
            def prop(value):
                assert value % 7 != 0

            return prop

        first = pytest.raises(AssertionError, build()).value
        second = pytest.raises(AssertionError, build()).value
        assert str(first) == str(second)


class TestGenerators:
    def test_sampled_from_only_yields_choices(self):
        @for_all(sampled_from(["a", "b", "c"]), runs=60)
        def prop(value):
            assert value in ("a", "b", "c")

        prop()

    def test_lists_respect_bounds(self):
        @for_all(lists_of(integers(0, 9), min_len=2, max_len=4), runs=60)
        def prop(items):
            assert 2 <= len(items) <= 4
            assert all(0 <= item <= 9 for item in items)

        prop()

    def test_byte_strings_respect_bounds(self):
        @for_all(byte_strings(min_len=3, max_len=3), runs=40)
        def prop(data):
            assert len(data) == 3

        prop()
