"""End-to-end tracing: connected span trees across runtime, channel,
router, and store (the observability acceptance scenarios)."""

import pytest

import repro
from repro import TrustedLibrary, TrustedLibraryRegistry
from repro.obs.tracer import find_spans


def double_bytes(data: bytes) -> bytes:
    return data + data


def make_libs() -> TrustedLibraryRegistry:
    libs = TrustedLibraryRegistry()
    libs.register(
        TrustedLibrary("testlib", "1.0").add("bytes double(bytes)", double_bytes)
    )
    return libs


DESC = repro.FunctionDescription("testlib", "1.0", "bytes double(bytes)")


@pytest.fixture
def cluster_session():
    return repro.connect(shards=4, replication_factor=2,
                         libraries=make_libs(), seed=b"trace-cluster")


def test_single_execute_produces_connected_tree_over_all_layers(cluster_session):
    session = cluster_session
    session.execute(DESC, b"payload")
    session.flush_puts()
    session.execute(DESC, b"payload")  # the traced request: a cluster hit

    spans = session.last_trace()
    roots = session.trace_tree()
    assert len(roots) == 1, "one request must yield one connected tree"
    root = roots[0]
    assert root.span.name == "runtime.execute"

    # Every span belongs to the same trace and links back to the root.
    ids = {s.span_id for s in spans}
    assert len({s.trace_id for s in spans}) == 1
    for span in spans:
        if span.parent_id is not None:
            assert span.parent_id in ids, f"{span.name} is disconnected"

    # The tree covers the runtime, enclave, channel, router, and store
    # phases of the GET path.
    names = {s.name for s in spans}
    for expected in ("runtime.execute", "runtime.tag", "runtime.verify",
                     "sgx.ecall", "sgx.ocall", "channel.encrypt",
                     "channel.decrypt", "rpc.call", "router.get",
                     "router.shard_get", "store.get", "store.lookup",
                     "store.blob_read"):
        assert expected in names, f"missing {expected} in {sorted(names)}"

    # And the nesting is the paper's call path: runtime -> router ->
    # rpc -> store, all under the root ECALL.
    assert root.find("router.get"), "router span must descend from the root"
    router_get = root.find("router.get")[0]
    assert router_get.find("store.get"), "store span must descend from routing"


def test_failover_and_read_repair_show_up_in_span_trees(cluster_session):
    session = cluster_session
    inputs = [b"item-%d" % i for i in range(16)]
    for item in inputs:
        session.execute(DESC, item)
    session.flush_puts()

    # Crash one shard: GETs for its tags must fail over to replicas.
    session.kill_shard("shard-0")
    for item in inputs:
        result = session.execute_result(DESC, item)
        assert result.hit, "replicas must serve the dead shard's tags"
    failovers = find_spans(session.tracer.spans(), "router.failover")
    assert failovers, "no failover was traced — seed no longer exercises it?"
    tree = session.tracer.tree(failovers[0].trace_id)
    assert len(tree) == 1 and tree[0].span.name == "runtime.execute"
    assert tree[0].find("router.failover")
    # The failed shard_get and the replica retry share the same parent GET.
    shard_gets = tree[0].find("router.get")[0].find("router.shard_get")
    assert len(shard_gets) >= 2

    # Fresh work while the shard is down lands only on the survivors, so
    # the revived shard is missing entries it owns...
    fresh = [b"fresh-%d" % i for i in range(16)]
    for item in fresh:
        session.execute(DESC, item)
    session.flush_puts()

    # ...and the next GETs serve from replicas and queue read-repair.
    session.revive_shard("shard-0")
    for item in fresh:
        session.execute(DESC, item)
    repairs = find_spans(session.tracer.spans(), "router.read_repair")
    assert repairs, "read-repair must be traced after the shard revives"
    repair_tree = session.tracer.tree(repairs[0].trace_id)
    assert len(repair_tree) == 1 and repair_tree[0].span.name == "runtime.execute"
    assert repair_tree[0].find("router.read_repair")
    session.flush_puts()


def test_execute_many_yields_one_batch_span_with_item_children():
    session = repro.connect(libraries=make_libs(), seed=b"trace-batch")
    inputs = [b"a", b"b", b"c", b"a", b"b"]
    results = session.execute_many_results(DESC, inputs)
    assert [r.value for r in results] == [i + i for i in inputs]

    roots = session.trace_tree()
    assert len(roots) == 1
    root = roots[0]
    assert root.span.name == "runtime.execute_batch"
    assert root.span.attrs["items"] == len(inputs)

    items = root.find("runtime.item")
    assert len(items) == len(inputs)
    assert sorted(node.span.attrs["index"] for node in items) == list(range(len(inputs)))

    # Per-item results link back into the batch trace.
    batch_trace = root.span.trace_id
    for result in results:
        assert result.trace_id == batch_trace
        assert result.span_id is not None


def test_store_side_spans_use_the_shard_machine_clock(cluster_session):
    session = cluster_session
    session.execute(DESC, b"clocked")
    session.flush_puts()
    session.execute(DESC, b"clocked")
    store_gets = find_spans(session.last_trace(), "store.get")
    assert store_gets, "hit path must include a store.get span"
    blob_reads = find_spans(session.last_trace(), "store.blob_read")
    assert blob_reads and blob_reads[0].sim_seconds > 0.0


def test_phase_breakdown_accumulates_over_session(cluster_session):
    session = cluster_session
    for i in range(4):
        session.execute(DESC, b"p%d" % i)
    trace_table = session.trace_table()
    assert "runtime.execute" in trace_table
    session.flush_puts()
    breakdown = session.phase_breakdown()
    assert breakdown["runtime.execute"]["count"] == 4
    assert breakdown["runtime.execute"]["sim_seconds"] > 0
    assert breakdown["router.get"]["count"] >= 4
    # Asynchronous PUTs flush as one-way sends carrying store.put work.
    assert breakdown["store.put"]["count"] >= 4
    table = session.phase_table()
    assert "runtime.execute" in table
