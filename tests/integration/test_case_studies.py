"""End-to-end runs of all four paper case studies through SPEED."""

import numpy as np
import pytest

from repro import Deployment
from repro.apps.registry import (
    bow_case_study,
    compress_case_study,
    pattern_case_study,
    sift_case_study,
)
from repro.apps.compress import inflate
from repro.core.description import TrustedLibraryRegistry
from repro.workloads import (
    generate_rules,
    packet_trace,
    synthetic_image,
    synthetic_text,
    synthetic_webpage,
)


def run_case(case, inputs, seed=b"case-e2e"):
    """First app computes everything; second app must hit everything."""
    deployment = Deployment(seed=seed)
    libs1, libs2 = TrustedLibraryRegistry(), TrustedLibraryRegistry()
    case.register_into(libs1)
    case.register_into(libs2)
    app1 = deployment.create_application("producer", libs1)
    app2 = deployment.create_application("consumer", libs2)
    d1, d2 = case.deduplicable(app1), case.deduplicable(app2)
    outputs1 = [d1(x) for x in inputs]
    app1.runtime.flush_puts()
    outputs2 = [d2(x) for x in inputs]
    assert app1.runtime.stats.hits == 0
    assert app2.runtime.stats.hits == len(inputs)
    return outputs1, outputs2, deployment


class TestSiftCase:
    def test_cross_app_reuse(self):
        images = [synthetic_image(64, seed=i) for i in range(3)]
        out1, out2, _ = run_case(sift_case_study(), images)
        for a, b, img in zip(out1, out2, images):
            assert np.array_equal(a, b)
            assert a.shape[1] == 132


class TestCompressCase:
    def test_cross_app_reuse(self):
        texts = [synthetic_text(4096, seed=i) for i in range(3)]
        out1, out2, _ = run_case(compress_case_study(), texts)
        for compressed1, compressed2, text in zip(out1, out2, texts):
            assert compressed1 == compressed2
            assert inflate(compressed1) == text


class TestPatternCase:
    def test_cross_app_reuse(self):
        rules = generate_rules(120, seed=1)
        packets = packet_trace(5, duplicate_fraction=0.0,
                               malicious_fraction=0.5, seed=2)
        out1, out2, _ = run_case(pattern_case_study(rules), packets)
        assert out1 == out2
        assert any(out1)  # at least one packet triggers a planted rule

    def test_different_rulesets_do_not_share(self):
        deployment = Deployment(seed=b"rulesets")
        case_a = pattern_case_study(generate_rules(50, seed=1))
        case_b = pattern_case_study(generate_rules(50, seed=2))
        libs_a, libs_b = TrustedLibraryRegistry(), TrustedLibraryRegistry()
        case_a.register_into(libs_a)
        case_b.register_into(libs_b)
        app_a = deployment.create_application("ids-a", libs_a)
        app_b = deployment.create_application("ids-b", libs_b)
        packet = packet_trace(1, seed=3)[0]
        case_a.deduplicable(app_a)(packet)
        app_a.runtime.flush_puts()
        case_b.deduplicable(app_b)(packet)
        assert app_b.runtime.stats.hits == 0  # different ruleset, no reuse


class TestBowCase:
    def test_cross_app_reuse(self):
        pages = [synthetic_webpage(150, seed=i) for i in range(3)]
        out1, out2, _ = run_case(bow_case_study(), pages)
        assert out1 == out2
        assert all(isinstance(bow, dict) and bow for bow in out1)


class TestMixedWorkload:
    def test_two_case_studies_share_one_store(self):
        deployment = Deployment(seed=b"mixed")
        sift_case = sift_case_study()
        compress_case = compress_case_study()
        libs = TrustedLibraryRegistry()
        sift_case.register_into(libs)
        compress_case.register_into(libs)
        app = deployment.create_application("multi-tool", libs)
        d_sift = sift_case.deduplicable(app)
        d_deflate = compress_case.deduplicable(app)
        image = synthetic_image(64, seed=1)
        text = synthetic_text(2048, seed=1)
        f1 = d_sift(image)
        c1 = d_deflate(text)
        app.runtime.flush_puts()
        assert np.array_equal(d_sift(image), f1)
        assert d_deflate(text) == c1
        assert app.runtime.stats.hits == 2
        assert len(deployment.store) == 2
