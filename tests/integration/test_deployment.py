"""Deployment wiring: applications, addressing, aggregate operations."""

import pytest

from repro import Deployment
from repro.errors import SpeedError
from tests.conftest import DOUBLE_DESC, make_libs


class TestDeployment:
    def test_duplicate_application_name_rejected(self):
        d = Deployment(seed=b"dep-1")
        d.create_application("app", make_libs())
        with pytest.raises(SpeedError):
            d.create_application("app", make_libs())

    def test_applications_listed(self):
        d = Deployment(seed=b"dep-2")
        d.create_application("a", make_libs())
        d.create_application("b", make_libs())
        assert sorted(app.name for app in d.applications()) == ["a", "b"]

    def test_flush_all_puts(self):
        d = Deployment(seed=b"dep-3")
        a = d.create_application("a", make_libs())
        b = d.create_application("b", make_libs())
        a.deduplicable(DOUBLE_DESC)(b"x")
        b.deduplicable(DOUBLE_DESC)(b"y")
        assert d.flush_all_puts() == 2
        assert len(d.store) == 2

    def test_application_enclaves_are_measured_by_their_libraries(self):
        from repro import FunctionDescription, TrustedLibrary, TrustedLibraryRegistry

        d = Deployment(seed=b"dep-4")
        app1 = d.create_application("one", make_libs())

        libs2 = TrustedLibraryRegistry()
        libs2.register(TrustedLibrary("otherlib", "2.0").add("g()", lambda x: x))
        app2 = d.create_application("two", libs2)
        assert app1.enclave.measurement.mrenclave != app2.enclave.measurement.mrenclave

    def test_clock_is_shared_across_components(self):
        d = Deployment(seed=b"dep-5")
        app = d.create_application("app", make_libs())
        before = d.clock.cycles
        app.deduplicable(DOUBLE_DESC)(b"x")
        assert d.clock.cycles > before
        assert d.clock is d.platform.clock

    def test_epc_override(self):
        d = Deployment(seed=b"dep-6", epc_usable_bytes=1024 * 1024)
        assert d.platform.epc.capacity_pages == (1024 * 1024) // 4096

    def test_store_address_scoped_to_machine(self):
        d1 = Deployment(seed=b"dep-7", machine="alpha")
        assert "alpha" in d1.store.address
