"""The benchmark harness regenerates every artifact (small parameters)."""

import pytest

from repro.bench import harness


class TestFig5Runners:
    def test_fig5a_shape(self):
        rows = harness.run_fig5a_sift(sizes=[64], trials=1)
        row = rows[0]
        assert row.speedup > 5          # SIFT is firmly in the win regime
        assert row.subsq_relative < 50
        assert row.sim_subsq_s < row.sim_baseline_s

    def test_fig5b_shape(self):
        rows = harness.run_fig5b_compress(sizes=[32 * harness.KB], trials=1)
        row = rows[0]
        assert 1.0 < row.speedup < 30   # the paper's "fast task" regime
        assert row.init_relative > 100  # storing adds overhead

    def test_fig5c_shape(self):
        # Even a reduced ruleset (300 of the paper's 3,700 rules) puts
        # pattern matching firmly in the win regime; the full-size run in
        # benchmarks/ reaches the paper's hundreds-fold speedups.
        rows = harness.run_fig5c_pattern(payload_sizes=[256], n_rules=300, trials=1)
        assert rows[0].speedup > 5

    def test_fig5d_shape(self):
        # 8000-word pages make the compute term dominate measurement
        # noise; the paper's regime is ~3.7-4x there.
        rows = harness.run_fig5d_bow(word_counts=[8000], trials=2)
        row = rows[0]
        assert row.speedup > 1.3
        assert row.init_relative > 100

    def test_print_fig5_renders(self):
        rows = harness.run_fig5d_bow(word_counts=[1000], trials=1)
        text = harness.print_fig5("Fig. 5(d)", rows)
        assert "speedup" in text and "1000w" in text


class TestTable1:
    def test_rows_and_monotonicity(self):
        rows = harness.run_table1(sizes=[1024, 65536], trials=1)
        assert len(rows) == 2
        small, large = rows
        for op in harness.TABLE1_OPS:
            assert large.sim_ms[op] > small.sim_ms[op]

    def test_enc_dec_cheaper_than_hashing_at_scale(self):
        # The paper's observation: result enc/dec are ~an order of
        # magnitude faster than tag generation for the same size.
        row = harness.run_table1(sizes=[1024 * 1024], trials=1)[0]
        assert row.sim_ms["result_enc"] < row.sim_ms["tag_gen"]
        assert row.sim_ms["result_dec"] < row.sim_ms["tag_gen"]

    def test_print_table1(self):
        text = harness.print_table1(harness.run_table1(sizes=[1024], trials=1))
        assert "Tag Gen." in text and "simulated" in text


class TestFig6:
    def test_sgx_slower_and_gap_narrows(self):
        rows = harness.run_fig6(sizes=[1024, 256 * 1024], ops=10)
        by_key = {(r.size_bytes, r.use_sgx): r for r in rows}
        small_ratio = (
            by_key[(1024, True)].get_total_sim_s / by_key[(1024, False)].get_total_sim_s
        )
        large_ratio = (
            by_key[(256 * 1024, True)].get_total_sim_s
            / by_key[(256 * 1024, False)].get_total_sim_s
        )
        assert small_ratio > 1.5          # SGX clearly slower at 1 KB
        assert large_ratio < small_ratio  # gap narrows with size

    def test_put_and_get_comparable_with_sgx(self):
        rows = harness.run_fig6(sizes=[1024], ops=10)
        sgx = next(r for r in rows if r.use_sgx)
        assert 0.3 < sgx.put_total_sim_s / sgx.get_total_sim_s < 3.0


class TestAblations:
    def test_schemes_ordering(self):
        rows = harness.run_ablation_schemes(text_bytes=8 * harness.KB)
        by_name = {r.scheme: r for r in rows}
        cross = by_name["cross-app (III-C)"]
        single = by_name["single-key (III-B)"]
        unic = by_name["UNIC plaintext [16]"]
        assert cross.encrypted_at_rest and single.encrypted_at_rest
        assert not unic.encrypted_at_rest
        # Cross-app pays a little more than single-key (extra hash),
        # plaintext pays least.
        assert cross.sim_subsq_s >= single.sim_subsq_s >= unic.sim_subsq_s

    def test_async_put_cuts_latency(self):
        rows = harness.run_ablation_async_put(text_bytes=8 * harness.KB)
        by_mode = {r.mode: r for r in rows}
        assert by_mode["async PUT"].sim_init_latency_s < by_mode["sync PUT"].sim_init_latency_s

    def test_epc_blobs_inside_thrash(self):
        rows = harness.run_ablation_epc(
            n_entries=64, result_bytes=64 * harness.KB, epc_usable=2 * harness.MB
        )
        by_design = {r.design: r for r in rows}
        paper = by_design["metadata-only in EPC (paper)"]
        naive = by_design["results inside EPC"]
        assert paper.page_faults == 0
        assert naive.page_faults > 500
        assert naive.sim_total_s > paper.sim_total_s

    def test_oblivious_metadata_overhead(self):
        rows = harness.run_ablation_oblivious(n_entries=16, gets=32)
        by_design = {r.design: r for r in rows}
        plain = by_design["plain dictionary (paper)"]
        oram = by_design["Path ORAM metadata"]
        assert oram.sim_total_s > plain.sim_total_s
        assert oram.oram_accesses == 16 + 32  # one path per PUT and GET
        assert plain.oram_accesses == 0

    def test_adaptive_suppresses_unprofitable_lookups(self):
        rows = harness.run_ablation_adaptive(calls=20)
        by_key = {(r.policy, r.workload): r for r in rows}
        assert (
            by_key[("adaptive", "cheap+unique")].store_gets
            < by_key[("always-on", "cheap+unique")].store_gets
        )
        assert (
            by_key[("adaptive", "slow+repetitive")].store_gets
            == by_key[("always-on", "slow+repetitive")].store_gets
        )

    def test_switchless_calls_cut_transition_cost(self):
        rows = harness.run_ablation_switchless(sizes=[1024], ops=10)
        by_mode = {r.mode: r for r in rows}
        classic = by_mode["classic ECALL/OCALL"].get_total_sim_s
        hot = by_mode["switchless (HotCalls)"].get_total_sim_s
        assert hot < classic
        # The saving equals the transition-cost delta exactly.
        from repro.sgx.cost_model import CostParams

        params = CostParams()
        per_op_saving = 2 * (params.ecall_cycles - params.hotcall_cycles)
        expected = 10 * per_op_saving / params.cpu_freq_hz
        assert abs((classic - hot) - expected) < 1e-9

    def test_duplication_sweep_crossover(self):
        rows = harness.run_duplication_sweep(
            fractions=[0.0, 0.9], calls=10, text_bytes=8 * harness.KB
        )
        by_fraction = {r.duplicate_fraction: r for r in rows}
        # No duplication: SPEED cannot win on the fast task.
        assert by_fraction[0.0].speedup < 1.2
        # Heavy duplication: it does.
        assert by_fraction[0.9].speedup > 1.0
        assert by_fraction[0.9].hit_rate > 0.7

    def test_incremental_hit_rate_converges(self):
        rows = harness.run_incremental(epochs=3, pages_per_epoch=8, churn=0.25)
        assert rows[0].hit_rate == 0.0
        assert rows[1].hit_rate >= 0.5
        assert rows[-1].sim_epoch_s < rows[0].sim_epoch_s

    def test_quota_contains_flood(self):
        # The flood must exceed the store's 128-entry capacity for the
        # no-quota variant to evict honest entries.
        rows = harness.run_ablation_quota(flood=200, honest=10)
        by_policy = {r.policy: r for r in rows}
        assert by_policy["no quota"].honest_entries_surviving < 10
        protected = by_policy["quota: 32 entries/app"]
        assert protected.accepted_from_attacker <= 32
        assert protected.honest_entries_surviving == 10


class TestBatch:
    def test_batch_sweep_meets_acceptance_targets(self):
        # The issue's acceptance bar, at batch size 64 on the Fig. 6 GET
        # regime: >=10x fewer enclave transitions per call and >=2x the
        # simulated throughput of the unbatched baseline.
        rows = harness.run_batch_store(batch_sizes=[1, 64], ops=64,
                                       size_bytes=harness.KB)
        gets = {r.batch_size: r for r in rows if r.phase == "get"}
        base, batched = gets[1], gets[64]
        assert base.transitions_per_call / batched.transitions_per_call >= 10
        assert batched.sim_ops_per_s / base.sim_ops_per_s >= 2
        puts = {r.batch_size: r for r in rows if r.phase == "put"}
        assert puts[64].sim_ops_per_s > puts[1].sim_ops_per_s

    def test_batch_execute_matches_sequential(self):
        rows = harness.run_batch_execute(batch_sizes=[4], calls=8,
                                         text_bytes=4 * harness.KB)
        assert all(r.identical for r in rows)
        by_phase = {(r.phase, r.batch_size): r for r in rows}
        seq = by_phase[("execute-seq", 1)]
        best = by_phase[("execute-batch", 8)]
        assert best.transitions_per_call < seq.transitions_per_call
        assert best.sim_ops_per_s > seq.sim_ops_per_s

    def test_print_batch_renders(self):
        rows = harness.run_batch_store(batch_sizes=[1, 4], ops=8)
        text = harness.print_batch(rows)
        assert "trans/call" in text and "sim ops/s" in text

    def test_batch_rows_export_to_json(self, tmp_path):
        from repro.bench.export import write_json
        import json

        rows = harness.run_batch_store(batch_sizes=[4], ops=8)
        path = write_json(rows, tmp_path / "BENCH_batch.json")
        records = json.loads(path.read_text())
        assert len(records) == len(rows)
        assert {"phase", "batch_size", "transitions_per_call",
                "sim_ops_per_s"} <= set(records[0])


class TestCluster:
    def test_cluster_sweep_meets_acceptance_targets(self):
        # The issue's acceptance bar: >=2x simulated GET throughput at 4
        # shards vs the single-store baseline, and a failover run where
        # one dead shard loses zero replicated results while read-repair
        # refills it after revival.
        rows = harness.run_cluster(shard_counts=[1, 4],
                                   replication_factors=[1, 2], ops=48)
        def pick(phase, n, rf):
            return next(r for r in rows if r.phase == phase
                        and r.n_shards == n and r.replication_factor == rf)

        assert pick("get", 4, 1).speedup >= 2
        assert pick("get", 4, 2).speedup >= 2
        failover = next(r for r in rows if r.phase == "failover-get")
        assert failover.results_lost == 0
        assert failover.failovers > 0
        repair = next(r for r in rows if r.phase == "repair-get")
        assert repair.results_lost == 0
        assert repair.read_repairs > 0

    def test_cluster_rows_export_to_json(self, tmp_path):
        import json

        from repro.bench.export import write_json

        rows = harness.run_cluster(shard_counts=[1, 2],
                                   replication_factors=[1], ops=16)
        path = write_json(rows, tmp_path / "BENCH_cluster.json")
        records = json.loads(path.read_text())
        assert len(records) == len(rows)
        assert {"phase", "n_shards", "replication_factor", "sim_ops_per_s",
                "speedup", "results_lost"} <= set(records[0])

    def test_print_cluster_renders(self):
        rows = harness.run_cluster(shard_counts=[1, 2],
                                   replication_factors=[1], ops=16)
        text = harness.print_cluster(rows)
        assert "speedup" in text and "failovers" in text


class TestPipeline:
    def test_pipeline_sweep_meets_acceptance_targets(self):
        # The issue's acceptance bar: >=2x simulated ops/s over the
        # serial path at depth 8 on 4 shards (GET-heavy), byte-identical
        # results, unchanged hit/miss/degraded conservation totals, and
        # a K-duplicate burst taking exactly one store round trip.
        rows = harness.run_pipeline(depths=[8], shard_counts=[4], ops=48)
        serial = next(r for r in rows
                      if r.phase == "get-heavy" and r.depth == 0)
        deep = next(r for r in rows
                    if r.phase == "get-heavy" and r.depth == 8)
        assert deep.speedup >= 2.0
        assert deep.identical
        assert (deep.hits, deep.misses, deep.degraded) == (
            serial.hits, serial.misses, serial.degraded
        )
        co_serial = next(r for r in rows
                         if r.phase == "coalesce" and r.depth == 0)
        co = next(r for r in rows if r.phase == "coalesce" and r.depth == 8)
        assert co.store_gets == 1
        assert co_serial.store_gets == co.ops
        assert co.coalesced == co.ops - 1
        assert co.identical
        assert (co.hits, co.misses, co.degraded) == (
            co_serial.hits, co_serial.misses, co_serial.degraded
        )

    def test_depth_one_pays_the_per_record_cost(self):
        # An unpipelined grouped round ships one record per op, losing
        # the batch AEAD amortization: depth 1 must not beat serial, and
        # deeper windows must monotonically improve on it.
        rows = harness.run_pipeline(depths=[1, 8], shard_counts=[4],
                                    ops=24, duplicates=4)
        d1 = next(r for r in rows
                  if r.phase == "get-heavy" and r.depth == 1)
        d8 = next(r for r in rows
                  if r.phase == "get-heavy" and r.depth == 8)
        assert d1.speedup <= 1.0
        assert d8.speedup > d1.speedup
        assert d1.identical and d8.identical

    def test_pipeline_rows_export_to_json(self, tmp_path):
        import json

        from repro.bench.export import write_json

        rows = harness.run_pipeline(depths=[8], shard_counts=[1],
                                    ops=12, duplicates=4)
        path = write_json(rows, tmp_path / "BENCH_pipeline.json")
        records = json.loads(path.read_text())
        assert len(records) == len(rows)
        assert {"phase", "n_shards", "depth", "sim_ops_per_s", "speedup",
                "identical", "coalesced", "store_gets"} <= set(records[0])

    def test_print_pipeline_renders(self):
        rows = harness.run_pipeline(depths=[8], shard_counts=[1],
                                    ops=12, duplicates=4)
        text = harness.print_pipeline(rows)
        assert "speedup" in text and "coalesced" in text


class TestAdaptive:
    def test_adaptive_sweep_meets_acceptance_targets(self):
        # The issue's acceptance bar: the auto row lands within 10% of
        # the best static depth, strictly beats the depth-1
        # anti-sweet-spot, and stays byte-identical to the depth-1
        # replay throughout.
        rows = harness.run_adaptive(depths=[1, 8], ops=24, rounds=12)
        sweep = [r for r in rows if r.phase == "get-heavy"]
        auto = next(r for r in sweep if r.depth == "auto")
        static = {r.depth: r for r in sweep if r.depth not in ("0", "auto")}
        best = min(r.elapsed_sim_s for r in static.values())
        assert auto.elapsed_sim_s <= 1.10 * best
        assert auto.elapsed_sim_s < static["1"].elapsed_sim_s
        assert auto.depth_changes > 0
        assert all(r.identical for r in rows)

    def test_join_phase_holds_the_foreground_bound(self):
        # The PR 8 streaming-migration bound, now under adaptive depth:
        # foreground throughput >= 0.70x of the no-join auto run, with
        # the migration window capping the depth and zero stalls.
        rows = harness.run_adaptive(depths=[1], ops=24, rounds=12)
        join = next(r for r in rows
                    if r.phase == "join" and r.entries_moved > 0)
        assert join.vs_baseline >= 0.70
        assert join.foreground_stalls == 0
        assert join.depth_caps > 0
        assert join.identical

    def test_adaptive_rows_export_to_json(self, tmp_path):
        import json

        from repro.bench.export import write_json

        rows = harness.run_adaptive(depths=[1, 8], ops=16, rounds=8)
        path = write_json(rows, tmp_path / "BENCH_adaptive.json")
        records = json.loads(path.read_text())
        assert len(records) == len(rows)
        assert {"phase", "n_shards", "depth", "elapsed_sim_s",
                "vs_baseline", "depth_final", "depth_changes",
                "depth_caps", "entries_moved", "foreground_stalls",
                "identical"} <= set(records[0])

    def test_print_adaptive_renders(self):
        rows = harness.run_adaptive(depths=[1], ops=16, rounds=8)
        text = harness.print_adaptive(rows)
        assert "vs baseline" in text and "caps" in text
