"""Model-based end-to-end property test of the DedupRuntime.

Hypothesis drives arbitrary interleavings of calls across two
applications against a single store; a plain-Python model predicts both
the returned values (always the pure function of the input) and the
hit/miss pattern (a call hits iff the tag's PUT was flushed earlier).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Deployment
from tests.conftest import DOUBLE_DESC, double_bytes, make_libs

# Each step: (app index, input index, flush after?)
step = st.tuples(
    st.integers(0, 1),
    st.integers(0, 5),
    st.booleans(),
)


class TestRuntimeModel:
    @given(steps=st.lists(step, max_size=25))
    @settings(max_examples=20, deadline=None)
    def test_interleaved_calls_match_model(self, steps):
        deployment = Deployment(seed=b"model")
        apps = [
            deployment.create_application("model-a", make_libs()),
            deployment.create_application("model-b", make_libs()),
        ]
        dedups = [app.deduplicable(DOUBLE_DESC) for app in apps]

        stored: set[int] = set()        # input indices whose PUT was flushed
        pending: dict[int, set[int]] = {0: set(), 1: set()}
        expected_hits = [0, 0]
        actual_hits_before = [app.runtime.stats.hits for app in apps]

        for app_index, input_index, flush in steps:
            data = b"input-%d" % input_index
            result = dedups[app_index](data)
            assert result == double_bytes(data)      # correctness, always
            if input_index in stored:
                expected_hits[app_index] += 1
            else:
                pending[app_index].add(input_index)
            if flush:
                apps[app_index].runtime.flush_puts()
                stored |= pending[app_index]
                pending[app_index].clear()

        for i, app in enumerate(apps):
            actual = app.runtime.stats.hits - actual_hits_before[i]
            assert actual == expected_hits[i], (
                f"app {i}: hits {actual} != model {expected_hits[i]}"
            )

        # Store-side global invariants.
        assert len(deployment.store) == len(stored)
        assert deployment.store.stats.puts_rejected == 0
