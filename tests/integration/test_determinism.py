"""Simulation reproducibility: same seed => bit-identical runs.

Every randomised component draws from seeded DRBGs, and the virtual
clock charges deterministic costs, so two runs of the same scenario must
agree in every observable — a property the experiment harness depends
on.  (Wall-clock-derived compute charges are excluded by using workloads
whose sim time is dominated by modelled costs, and by comparing
store-side state rather than clock totals where compute is involved.)
"""

from repro import Deployment
from repro.core.tag import derive_tag
from repro.crypto.hashes import sha256
from repro.net.messages import GetRequest, PutRequest
from tests.conftest import DOUBLE_DESC, make_libs


def run_store_scenario(seed: bytes):
    """A compute-free scenario: raw PUT/GET traffic against the store."""
    d = Deployment(seed=seed)
    enclave = d.platform.create_enclave("client", b"client-code")
    client = d.store.connect("client-addr", app_enclave=enclave)
    transcript = []
    for i in range(10):
        tag = sha256(b"det" + bytes([i % 4]))
        if i % 3 == 0:
            response = client.call(PutRequest(
                tag=tag, challenge=bytes(32), wrapped_key=bytes(16),
                sealed_result=b"blob-%d" % (i % 4), app_id="app",
            ))
            transcript.append(("put", response.accepted, response.reason))
        else:
            response = client.call(GetRequest(tag=tag, app_id="app"))
            transcript.append(("get", response.found, response.sealed_result))
    return d, transcript


class TestDeterminism:
    def test_store_transcripts_identical(self):
        _, t1 = run_store_scenario(b"det-seed")
        _, t2 = run_store_scenario(b"det-seed")
        assert t1 == t2

    def test_sim_clock_identical_for_compute_free_runs(self):
        d1, _ = run_store_scenario(b"det-seed")
        d2, _ = run_store_scenario(b"det-seed")
        assert d1.clock.cycles == d2.clock.cycles
        assert d1.clock.breakdown() == d2.clock.breakdown()

    def test_different_seeds_different_ciphertexts(self):
        from tests.conftest import double_bytes

        def stored_blob(seed):
            d = Deployment(seed=seed)
            app = d.create_application("app", make_libs())
            dedup = app.deduplicable(DOUBLE_DESC)
            dedup(b"data")
            app.runtime.flush_puts()
            func_identity = app.runtime.libraries.function_identity(DOUBLE_DESC)
            from repro.core.serialization import AnyParser, default_registry

            tag = derive_tag(func_identity, AnyParser(default_registry()).encode(b"data"))
            return d.store.blobstore.get(d.store.blob_ref_of(tag))

        assert stored_blob(b"seed-one") != stored_blob(b"seed-two")

    def test_same_seed_same_ciphertexts(self):
        def stored_bytes(seed):
            d = Deployment(seed=seed)
            app = d.create_application("app", make_libs())
            dedup = app.deduplicable(DOUBLE_DESC)
            dedup(b"data")
            app.runtime.flush_puts()
            return d.store.blobstore._blobs.copy()

        assert stored_bytes(b"same") == stored_bytes(b"same")

    def test_tags_platform_independent(self):
        # Tags must be identical across machines (the master-store
        # no-redundancy argument, §IV-B remark).
        from repro.core.serialization import AnyParser, default_registry

        def tag_on(seed, machine):
            d = Deployment(seed=seed, machine=machine)
            app = d.create_application("app", make_libs())
            fid = app.runtime.libraries.function_identity(DOUBLE_DESC)
            return derive_tag(fid, AnyParser(default_registry()).encode(b"m"))

        assert tag_on(b"s1", "machine-a") == tag_on(b"s2", "machine-b")
