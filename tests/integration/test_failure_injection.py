"""Failure injection: dropped and corrupted wire messages.

Fault indices count **per (source, dest) edge**: a plain integer rule
matches that index on every edge, and an ``(source, dest, index)`` tuple
pins the rule to one direction of one conversation.  The app's client
endpoint is ``app@machine-0`` and the store's is ``resultstore@machine-0``
under the default deployment, so e.g. the first PUT request is index 1 on
the app→store edge (index 0 was the GET) and the PUT response is index 1
on the store→app edge.
"""

import pytest

from repro import Deployment
from repro.errors import ProtocolError, TransportError
from repro.net.transport import FaultInjector
from tests.conftest import DOUBLE_DESC, double_bytes, make_libs

APP = "app@machine-0"
STORE = "resultstore@machine-0"


class TestMessageLoss:
    def test_dropped_get_surfaces_as_transport_error(self):
        # Message 0 of the app→store edge is the first GET (channel
        # establishment is in-process, not on the wire).
        d = Deployment(seed=b"drop-get",
                       fault_injector=FaultInjector(drop_indices={(APP, STORE, 0)}))
        app = d.create_application("app", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        with pytest.raises(TransportError):
            dedup(b"data")

    def test_corrupted_get_rejected_by_channel(self):
        d = Deployment(seed=b"corrupt-get",
                       fault_injector=FaultInjector(corrupt_indices={(APP, STORE, 0)}))
        app = d.create_application("app", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        # The store's channel detects the corruption and answers with a
        # protocol error, which the client surfaces.
        with pytest.raises(ProtocolError):
            dedup(b"data")

    def test_dropped_put_response_does_not_block_progress(self):
        # Store→app edge: 0 GET-response, 1 PUT-response (dropped).
        d = Deployment(seed=b"drop-put-resp",
                       fault_injector=FaultInjector(drop_indices={(STORE, APP, 1)}))
        app = d.create_application("app", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        out = dedup(b"data")
        assert out == double_bytes(b"data")
        app.runtime.flush_puts()  # response lost; no acceptance recorded
        assert app.runtime.stats.puts_sent == 1
        assert app.runtime.stats.puts_accepted == 0
        # The PUT itself arrived, so the next call still hits.
        assert dedup(b"data") == out
        assert app.runtime.stats.hits == 1

    def test_dropped_put_request_means_no_dedup_but_correct_results(self):
        # App→store edge: 0 GET, 1 PUT (dropped).
        d = Deployment(seed=b"drop-put",
                       fault_injector=FaultInjector(drop_indices={(APP, STORE, 1)}))
        app = d.create_application("app", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        assert dedup(b"data") == double_bytes(b"data")
        app.runtime.flush_puts()
        assert dedup(b"data") == double_bytes(b"data")  # recomputed
        assert app.runtime.stats.hits == 0
        assert app.runtime.stats.misses == 2
