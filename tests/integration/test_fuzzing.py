"""Adversarial-input fuzzing: malformed bytes anywhere on the untrusted
surface must raise clean library errors (or be answered with protocol
errors), never crash or hang the trusted components."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Deployment
from repro.apps.compress import inflate
from repro.errors import SpeedError
from repro.net.channel import NullChannelEndpoint
from repro.net.messages import decode_message
from repro.store.resultstore import StoreConfig
from tests.conftest import make_libs


class TestWireFuzzing:
    @given(st.binary(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_decode_message_never_crashes(self, data):
        try:
            decode_message(data)
        except SpeedError:
            pass  # the only acceptable failure mode

    @given(st.binary(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_channel_unprotect_never_crashes(self, record):
        from repro.store.resultstore import plain_channel_pair
        from repro.sgx.cost_model import SimClock

        _, server = plain_channel_pair(SimClock(), b"fuzz")
        try:
            server.unprotect(record)
        except SpeedError:
            pass

    def test_store_answers_garbage_with_error_response(self):
        # A connected-but-malicious client sends a record that decrypts
        # (null channel) into garbage; the store must answer, not die.
        d = Deployment(seed=b"fuzz-store", store_config=StoreConfig(use_sgx=False))
        client = d.store.connect("fuzz-client")
        endpoint = client._endpoint
        channel: NullChannelEndpoint = client._channel
        endpoint.send(d.store.address, channel.protect(b"\xff\xfe not a message"))
        _, reply = endpoint.recv()
        message = decode_message(channel.unprotect(reply))
        assert type(message).__name__ == "ErrorMessage"
        # The store remains fully functional afterwards.
        from repro.crypto.hashes import sha256
        from repro.net.messages import GetRequest

        response = client.call(GetRequest(tag=sha256(b"x"), app_id="a"))
        assert not response.found


class TestCodecFuzzing:
    @given(st.binary(max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_inflate_never_crashes(self, blob):
        try:
            inflate(blob)
        except SpeedError:
            pass

    @given(st.binary(min_size=16, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_inflate_with_valid_magic_never_crashes(self, tail):
        try:
            inflate(b"SPDZ" + tail)
        except SpeedError:
            pass


class TestSerializationFuzzing:
    @given(st.binary(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_any_parser_decode_never_crashes(self, data):
        from repro.core.serialization import AnyParser, default_registry

        try:
            AnyParser(default_registry()).decode(data)
        except SpeedError:
            pass
