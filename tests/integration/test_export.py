"""CSV export of experiment rows."""

import csv
import io

import pytest

from repro.bench import harness
from repro.bench.export import rows_to_csv, write_csv


class TestCsvExport:
    def test_fig5_rows_with_derived_columns(self):
        rows = harness.run_fig5d_bow(word_counts=[1000], trials=1)
        text = rows_to_csv(rows)
        parsed = list(csv.reader(io.StringIO(text)))
        header, data = parsed[0], parsed[1:]
        assert "label" in header
        assert "speedup" in header          # derived property exported
        assert "init_relative" in header
        assert len(data) == 1
        assert data[0][header.index("label")] == "1000w"

    def test_table1_dict_columns_flattened(self):
        rows = harness.run_table1(sizes=[1024], trials=1)
        text = rows_to_csv(rows)
        assert "tag_gen=" in text           # dict cells become k=v lists

    def test_empty_rows(self):
        assert rows_to_csv([]) == ""

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            rows_to_csv([{"not": "a dataclass"}])

    def test_write_csv_creates_directories(self, tmp_path):
        rows = harness.run_ablation_quota(flood=20, honest=2)
        out = write_csv(rows, tmp_path / "nested" / "a4.csv")
        assert out.exists()
        content = out.read_text()
        assert "policy" in content

    def test_cli_csv_flag(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        assert main(["e9", "--quick", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "e9.csv").exists()
        assert "incremental" in capsys.readouterr().out
