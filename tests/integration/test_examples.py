"""Every example script must run to completion (smoke level)."""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_at_least_three_examples_exist():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
