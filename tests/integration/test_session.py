"""The unified public API: repro.connect() / Session."""

import json

import pytest

import repro
from repro import (
    ClusterDeployment,
    DedupResult,
    Deployment,
    QuotaExceededError,
    SpeedError,
    StoreConfig,
    StoreError,
    TrustedLibrary,
    TrustedLibraryRegistry,
)
from repro.errors import NoLiveOwnerError, error_codes, error_for_code


def double_bytes(data: bytes) -> bytes:
    return data + data


def make_libs() -> TrustedLibraryRegistry:
    libs = TrustedLibraryRegistry()
    libs.register(
        TrustedLibrary("testlib", "1.0").add("bytes double(bytes)", double_bytes)
    )
    return libs


DESC = repro.FunctionDescription("testlib", "1.0", "bytes double(bytes)")


# -- facade ----------------------------------------------------------------
def test_connect_single_store_executes_and_dedups():
    session = repro.connect(libraries=make_libs(), seed=b"t-session")
    assert not session.is_cluster
    assert session.execute(DESC, b"abc") == b"abcabc"
    session.flush_puts()
    result = session.execute_result(DESC, b"abc")
    assert isinstance(result, DedupResult)
    assert result.value == b"abcabc"
    assert result.hit and result.source == "store"
    assert result.span_id is not None and result.trace_id is not None


def test_connect_cluster_topology():
    session = repro.connect(shards=3, replication_factor=2,
                            libraries=make_libs(), seed=b"t-cluster")
    assert session.is_cluster
    assert session.cluster.shard_ids == ("shard-0", "shard-1", "shard-2")
    assert session.execute(DESC, b"xyz") == b"xyzxyz"
    with pytest.raises(SpeedError):
        session.store  # single-store accessor must refuse on a cluster


def test_single_session_refuses_cluster_accessors():
    session = repro.connect(libraries=make_libs(), seed=b"t-single")
    with pytest.raises(SpeedError):
        session.cluster


def test_mark_decorator_and_batch_map():
    session = repro.connect(seed=b"t-mark")

    @session.mark(version="1.0")
    def triple(data: bytes) -> bytes:
        return data * 3

    assert triple(b"a") == b"aaa"
    session.flush_puts()
    results = triple.map_results([b"a", b"b", b"a"])
    assert [r.value for r in results] == [b"aaa", b"bbb", b"aaa"]
    assert results[0].hit and results[0].source == "store"
    assert results[2].hit  # intra-batch duplicate
    assert triple.map([b"c"]) == [b"ccc"]


def test_deduplicable_is_cached_per_description():
    session = repro.connect(libraries=make_libs(), seed=b"t-cache")
    assert session.deduplicable(DESC) is session.deduplicable(DESC)
    custom = session.deduplicable(DESC, native_factor=2.0)
    assert custom is not session.deduplicable(DESC)


def test_sibling_shares_store_and_tracer():
    session_a = repro.connect(libraries=make_libs(), seed=b"t-sibling")
    session_b = session_a.sibling("app-b")
    assert session_b.deployment is session_a.deployment
    assert session_b.tracer is session_a.tracer
    assert session_a.execute(DESC, b"zz") == b"zzzz"
    session_a.flush_puts()
    result = session_b.execute_result(DESC, b"zz")
    assert result.hit, "sibling applications share dedup results"


def test_connect_with_machine_name_and_tracing_off():
    session = repro.connect(machine="machine-x", seed=b"t-mach", tracing=False)
    assert session.platform.name == "machine-x"
    assert not session.tracer.enabled
    assert session.last_trace() == []
    assert session.trace_tree() == []
    assert session.phase_breakdown() == {}
    assert session.slow_calls() == []


# -- unified metrics -------------------------------------------------------
def test_snapshot_uses_canonical_dotted_keys_only():
    session = repro.connect(libraries=make_libs(), seed=b"t-metrics")
    session.execute(DESC, b"m")
    session.flush_puts()
    session.execute(DESC, b"m")
    snap = session.snapshot()
    assert all("." in key for key in snap)
    assert snap["runtime.calls"] == 2
    assert snap["runtime.hits"] == 1
    assert snap["store.gets"] == 2
    assert json.loads(session.to_json())["runtime.calls"] == 2


def test_cluster_snapshot_namespaces_each_shard():
    session = repro.connect(shards=2, libraries=make_libs(), seed=b"t-cm")
    session.execute(DESC, b"m")
    session.flush_puts()
    snap = session.snapshot()
    assert snap["router.gets"] == 1
    assert "store.shard-0.gets" in snap
    assert "store.shard-1.gets" in snap
    assert snap["store.shard-0.gets"] + snap["store.shard-1.gets"] >= 1


def test_cluster_snapshot_namespaces_dotted_subgroups_per_shard():
    # Dotted store sub-groups (restore.*, durable.*) would collide across
    # shards if emitted verbatim; each must carry its shard id.
    session = repro.connect(shards=2, libraries=make_libs(), seed=b"t-cm2",
                            store_config=StoreConfig(durable=True))
    session.execute(DESC, b"m")
    session.flush_puts()
    for sid in list(session.cluster.shards):
        session.power_fail_shard(sid)
    snap = session.snapshot()
    for sid in ("shard-0", "shard-1"):
        assert snap[f"store.{sid}.restore.power_fails"] == 1
        assert snap[f"store.{sid}.durable.recoveries"] == 1
    assert "restore.power_fails" not in snap


# -- deprecation + errors --------------------------------------------------
def test_direct_deployment_construction_warns():
    with pytest.warns(DeprecationWarning, match="repro.connect"):
        Deployment(seed=b"t-warn")
    with pytest.warns(DeprecationWarning, match="repro.connect"):
        ClusterDeployment(seed=b"t-warn-cluster", n_shards=1,
                          replication_factor=1)


def test_error_codes_registry():
    codes = error_codes()
    assert codes["quota_exceeded"] is QuotaExceededError
    assert codes["no_live_owner"] is NoLiveOwnerError
    assert error_for_code("quota_exceeded") is QuotaExceededError
    assert error_for_code("not-a-code") is SpeedError
    assert issubclass(QuotaExceededError, StoreError)
    assert len(set(codes)) == len(codes)


def test_error_classes_exported_from_package_root():
    for name in ("SpeedError", "StoreError", "QuotaExceededError",
                 "NoLiveOwnerError", "VerificationError", "ChannelError",
                 "TransportError", "DedupError", "error_codes",
                 "error_for_code"):
        assert hasattr(repro, name), name
