"""Bench reporting/calibration helpers."""

from repro.bench.reporting import format_table, human_size


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table("Title", ["col-a", "b"], [["x", 1.5], ["longer", 123.456]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert lines[1] == "=" * 5
        assert "col-a" in lines[2]
        # All data lines align to the same width.
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1

    def test_float_formatting(self):
        text = format_table("T", ["v"], [[0.00012345], [12.3456], [1234.5]])
        assert "0.0001" in text
        assert "12.35" in text
        assert "1234.5" in text

    def test_empty_rows(self):
        text = format_table("Empty", ["a"], [])
        assert "Empty" in text


class TestHumanSize:
    def test_bytes(self):
        assert human_size(17) == "17B"

    def test_kilobytes(self):
        assert human_size(10 * 1024) == "10KB"

    def test_megabytes(self):
        assert human_size(3 * 1024 * 1024) == "3MB"


class TestCalibration:
    def test_calibration_runs_and_reports(self):
        # Keep it cheap: calibration itself uses fixed workloads; just
        # validate the row structure on the two fast cases by reusing the
        # private helpers.
        from repro.bench.calibration import _row

        row = _row("compress", "w", seconds=0.5, n_bytes=1024, shipped=110.0)
        assert row.suggested_factor > 0
        assert row.python_ns_per_byte == 0.5e9 / 1024

    def test_full_calibration_run(self):
        from repro.bench.calibration import print_calibration, run_calibration

        rows = run_calibration(seed=7)
        assert {r.case for r in rows} == {"sift", "compress", "pattern", "bow"}
        for row in rows:
            assert row.python_seconds > 0
            assert row.suggested_factor > 0
        text = print_calibration(rows)
        assert "shipped factor" in text
