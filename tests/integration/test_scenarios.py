"""Long-running end-to-end scenarios combining every subsystem.

These are the "does the whole machine hold together" tests: realistic
multi-tenant operation with eviction, quotas, adversarial interference,
cross-machine replication, and a restart — with global invariants
checked throughout.
"""

import numpy as np
import pytest

from repro import Deployment, QuotaPolicy, RuntimeConfig
from repro.apps.registry import pattern_case_study
from repro.core.description import TrustedLibraryRegistry
from repro.security import CachePoisoningAdversary
from repro.sgx.attestation import AttestationService
from repro.store.persistence import restore_store, snapshot_store
from repro.store.resultstore import StoreConfig
from repro.store.sync import replicate_popular
from repro.workloads import generate_rules, packet_trace
from tests.conftest import DOUBLE_DESC, double_bytes, make_libs


class TestIdsScenario:
    """A two-tenant IDS over a realistic trace, under store pressure."""

    def test_full_lifecycle(self):
        rules = generate_rules(200, seed=11)
        trace = packet_trace(80, payload_size=384, duplicate_fraction=0.5,
                             malicious_fraction=0.2, seed=11)
        d = Deployment(
            seed=b"scenario-ids",
            store_config=StoreConfig(
                capacity_entries=32, eviction="lru",
                quota=QuotaPolicy(max_entries_per_app=24),
            ),
        )
        case = pattern_case_study(rules)
        tenants = []
        for name in ("ids-a", "ids-b"):
            libs = TrustedLibraryRegistry()
            libs.register(case.library)
            app = d.create_application(name, libs)
            tenants.append((app, case.deduplicable(app)))

        reference = {}
        for index, payload in enumerate(trace):
            app, scan = tenants[index % 2]
            matches = scan(payload)
            app.runtime.flush_puts()
            # Results must be consistent regardless of which tenant
            # computed them or whether they came from the store.
            if payload in reference:
                assert matches == reference[payload]
            else:
                reference[payload] = matches
            # Store invariants under eviction + quota pressure.
            assert len(d.store) <= 32
            assert len(d.store.blobstore) == len(d.store)

        total_hits = sum(app.runtime.stats.hits for app, _ in tenants)
        assert total_hits > 10  # duplication was actually exploited
        assert d.store.stats.puts_rejected == 0

    def test_lifecycle_with_adversary_inline(self):
        d = Deployment(seed=b"scenario-adv")
        app = d.create_application("victim", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        adversary = CachePoisoningAdversary(d.store)
        rng = np.random.default_rng(13)
        inputs = [b"doc-%d" % int(rng.integers(0, 6)) for _ in range(40)]
        for index, data in enumerate(inputs):
            if index % 10 == 9:
                adversary.tamper_all()  # periodic corruption sweeps
            assert dedup(data) == double_bytes(data)
            app.runtime.flush_puts()
        # Despite repeated poisoning, every answer was correct, and the
        # store detected each tampered blob it served.
        assert d.store.stats.tamper_detected > 0
        assert app.runtime.stats.verification_failures == 0  # store caught all


class TestFleetScenario:
    """Three machines: two edge stores replicating into one master,
    surviving a master restart."""

    def test_replicate_restart_reuse(self):
        service = AttestationService()
        edge_a = Deployment(seed=b"fleet-a", machine="edge-a",
                            attestation_service=service)
        edge_b = Deployment(seed=b"fleet-b", machine="edge-b",
                            attestation_service=service)
        master = Deployment(seed=b"fleet-m", machine="master",
                            attestation_service=service)

        # Both edges compute overlapping work.
        for deployment, name in ((edge_a, "app-a"), (edge_b, "app-b")):
            app = deployment.create_application(name, make_libs())
            dedup = app.deduplicable(DOUBLE_DESC)
            for i in range(4):
                dedup(b"shared-%d" % i)
                app.runtime.flush_puts()
                dedup(b"shared-%d" % i)  # make entries "popular"

        r1 = replicate_popular(service, edge_a.store, master.store)
        r2 = replicate_popular(service, edge_b.store, master.store)
        assert r1.transferred == 4
        assert r2.transferred == 0 and r2.duplicates == 4  # no redundancy

        # Master restarts; its sealed snapshot survives.
        blob = snapshot_store(master.store)
        master_restarted = Deployment(seed=b"fleet-m", machine="master",
                                      attestation_service=AttestationService())
        report = restore_store(master_restarted.store, blob)
        assert report.entries_restored == 4

        # A fresh app on the restarted master reuses everything.
        app = master_restarted.create_application("app-m", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        for i in range(4):
            assert dedup(b"shared-%d" % i) == double_bytes(b"shared-%d" % i)
        assert app.runtime.stats.hits == 4
