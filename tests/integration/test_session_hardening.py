"""connect() hardening knobs and their canonical metrics keys.

The retry/breaker/degradation machinery must be reachable through the
public ``repro.connect`` surface, and every counter it maintains must
land in ``Session.snapshot()`` under the canonical dotted key scheme —
dashboards and the simulation trace both key off these names.
"""

import repro
from repro import TrustedLibrary, TrustedLibraryRegistry
from repro.core.runtime import RuntimeConfig
from repro.net.circuit import OPEN, BreakerConfig
from repro.net.rpc import RetryPolicy


def double_bytes(data: bytes) -> bytes:
    return data + data


def make_libs() -> TrustedLibraryRegistry:
    libs = TrustedLibraryRegistry()
    libs.register(
        TrustedLibrary("testlib", "1.0").add("bytes double(bytes)", double_bytes)
    )
    return libs


DESC = repro.FunctionDescription("testlib", "1.0", "bytes double(bytes)")

HARDENING = dict(
    retry_policy=RetryPolicy(max_attempts=3),
    breaker_config=BreakerConfig(
        failure_threshold=2, reset_timeout_s=None, reset_after_skips=4
    ),
    runtime_config=RuntimeConfig(degrade_on_store_failure=True),
)


def test_cluster_hardening_counters_have_canonical_keys():
    session = repro.connect(
        shards=2, replication_factor=2, libraries=make_libs(),
        seed=b"t-hardening", **HARDENING,
    )
    session.execute(DESC, b"a")
    session.flush_puts()
    snap = session.snapshot()
    for key in (
        "router.retries",
        "router.backoff_seconds_total",
        "router.circuit_opens",
        "router.circuit_skips",
        "router.open_circuits",
        "router.read_repairs",
        "runtime.degraded_calls",
        "runtime.puts_acked_unique",
        "net.messages",
        "net.dropped",
    ):
        assert key in snap, f"missing canonical key {key}"
    assert "router.breaker.shard-0.state" in snap
    assert "router.breaker.shard-1.state" in snap
    assert snap["runtime.degraded_calls"] == 0
    assert snap["net.dropped"] == 0


def test_degraded_calls_and_breaker_opens_flow_into_snapshot():
    session = repro.connect(
        shards=2, replication_factor=2, libraries=make_libs(),
        seed=b"t-degraded", **HARDENING,
    )
    assert session.execute(DESC, b"warm") == b"warmwarm"
    session.flush_puts()
    for shard in session.cluster.shard_ids:
        session.cluster.kill_shard(shard)
    # Every owner dead: each call degrades to local recompute, and the
    # repeated failures trip the per-shard breakers.
    for i in range(4):
        payload = b"deg-%d" % i
        assert session.execute(DESC, payload) == payload * 2
    snap = session.snapshot()
    assert snap["runtime.degraded_calls"] == 4
    assert (
        snap["runtime.hits"] + snap["runtime.misses"]
        + snap["runtime.degraded_calls"]
        == snap["runtime.calls"]
    )
    assert snap["router.circuit_opens"] >= 1
    assert snap["router.open_circuits"] >= 1
    assert any(
        snap[f"router.breaker.{shard}.state"] == OPEN
        for shard in session.cluster.shard_ids
    )
    assert snap["router.circuit_skips"] >= 1


def test_single_store_retry_counters_have_canonical_keys():
    session = repro.connect(
        libraries=make_libs(), seed=b"t-rpc",
        retry_policy=RetryPolicy(max_attempts=3),
    )
    client = session.runtime.client
    assert client.retry_policy is not None

    # Drop the next request on the app->store edge: the retry must
    # absorb it and the counters must surface under rpc.* keys.
    src = client._endpoint.address
    dst = client._server_address
    fault = session.fault
    fault.drop_indices.add((src, dst, fault.edge_count(src, dst)))
    assert session.execute(DESC, b"retry") == b"retryretry"

    snap = session.snapshot()
    assert snap["rpc.retries"] == 1
    assert snap["rpc.backoff_seconds_total"] > 0
    assert snap["net.dropped"] == 1
    assert snap["runtime.degraded_calls"] == 0
