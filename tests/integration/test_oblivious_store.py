"""The oblivious-metadata store variant end-to-end."""

import pytest

from repro import Deployment
from repro.store.oblivious import ObliviousMetadataDict
from repro.store.resultstore import StoreConfig
from tests.conftest import DOUBLE_DESC, double_bytes, make_libs


@pytest.fixture
def oblivious_deployment():
    return Deployment(
        seed=b"oblivious-e2e",
        store_config=StoreConfig(oblivious_metadata=True, oblivious_capacity=128),
    )


class TestObliviousStore:
    def test_dedup_works_end_to_end(self, oblivious_deployment):
        d = oblivious_deployment
        app = d.create_application("app", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        for i in range(6):
            assert dedup(b"input-%d" % i) == double_bytes(b"input-%d" % i)
            app.runtime.flush_puts()
        for i in range(6):
            assert dedup(b"input-%d" % i) == double_bytes(b"input-%d" % i)
        assert app.runtime.stats.hits == 6
        assert isinstance(d.store._dict, ObliviousMetadataDict)

    def test_every_request_costs_one_oram_path(self, oblivious_deployment):
        d = oblivious_deployment
        app = d.create_application("app", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        dedup(b"x")                      # GET (miss) = 1 access
        app.runtime.flush_puts()         # PUT = 1 access
        dedup(b"x")                      # GET (hit) = 1 access
        assert d.store._dict.oram.accesses == 3

    def test_eviction_works_obliviously(self):
        d = Deployment(
            seed=b"oblivious-evict",
            store_config=StoreConfig(
                oblivious_metadata=True, oblivious_capacity=128,
                capacity_entries=3, eviction="lru",
            ),
        )
        app = d.create_application("app", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        for i in range(5):
            dedup(b"input-%d" % i)
            app.runtime.flush_puts()
        assert len(d.store) == 3
        assert d.store.stats.evictions == 2

    def test_oblivious_costs_more_than_plain(self):
        plain = Deployment(seed=b"cmp-plain")
        obliv = Deployment(
            seed=b"cmp-obliv",
            store_config=StoreConfig(oblivious_metadata=True, oblivious_capacity=64),
        )
        costs = {}
        for name, d in (("plain", plain), ("oblivious", obliv)):
            app = d.create_application("app", make_libs())
            dedup = app.deduplicable(DOUBLE_DESC)
            dedup(b"data")
            app.runtime.flush_puts()
            mark = d.clock.snapshot()
            dedup(b"data")
            costs[name] = d.clock.since(mark)
        assert costs["oblivious"] > costs["plain"]
