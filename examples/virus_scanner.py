#!/usr/bin/env python
"""A cloud virus-scanning service accelerated by SPEED (paper Case 3).

Two SGX-enabled scanner instances (think: two tenants of a VirusTotal-
style service) scan the same packet stream against a 1,000-rule Snort-
like ruleset.  Network traces are highly redundant, and the second
scanner reuses every result the first one already computed — without
either of them sharing a key, and without the host ever seeing a result
in plaintext.

Run:  python examples/virus_scanner.py
"""

import repro
from repro import TrustedLibraryRegistry
from repro.apps.registry import pattern_case_study
from repro.workloads import generate_rules, packet_trace


def main() -> None:
    rules = generate_rules(1000, seed=42)
    trace = packet_trace(
        count=60, payload_size=512, duplicate_fraction=0.6,
        malicious_fraction=0.3, seed=42,
    )

    case = pattern_case_study(rules)

    def libs() -> TrustedLibraryRegistry:
        registry = TrustedLibraryRegistry()
        registry.register(case.library)
        return registry

    session_a = repro.connect(
        app_name="scanner-tenant-a", libraries=libs(), seed=b"virus-scanner"
    )
    session_b = session_a.sibling("scanner-tenant-b", libraries=libs())
    scanners = [
        (session, case.deduplicable(session.app))
        for session in (session_a, session_b)
    ]

    alerts = 0
    for index, payload in enumerate(trace):
        session, scan = scanners[index % 2]  # packets load-balanced across tenants
        matches = scan(payload)
        alerts += len(matches)
        session.flush_puts()

    print(f"packets scanned      : {len(trace)}")
    print(f"rules loaded         : {len(rules)}")
    print(f"alerts raised        : {alerts}")
    for session, _ in scanners:
        stats = session.stats
        print(
            f"{session.app.name:18s}: {stats.calls} calls, {stats.hits} hits "
            f"({stats.hit_rate():.0%}), {stats.verification_failures} verify failures"
        )
    store = session_a.store.stats
    print(f"result store         : {store.gets} GETs ({store.hit_rate():.0%} hit), "
          f"{store.puts} PUTs ({store.puts_duplicate} duplicate)")

    misses = [r.sim_seconds for s, _ in scanners for r in s.stats.records if not r.hit]
    hits = [r.sim_seconds for s, _ in scanners for r in s.stats.records if r.hit]
    if hits and misses:
        speedup = (sum(misses) / len(misses)) / (sum(hits) / len(hits))
        print(f"mean speedup on hits : {speedup:.0f}x (simulated)")


if __name__ == "__main__":
    main()
