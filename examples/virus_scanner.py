#!/usr/bin/env python
"""A cloud virus-scanning service accelerated by SPEED (paper Case 3).

Two SGX-enabled scanner instances (think: two tenants of a VirusTotal-
style service) scan the same packet stream against a 1,000-rule Snort-
like ruleset.  Network traces are highly redundant, and the second
scanner reuses every result the first one already computed — without
either of them sharing a key, and without the host ever seeing a result
in plaintext.

Run:  python examples/virus_scanner.py
"""

from repro import Deployment
from repro.apps.registry import pattern_case_study
from repro.core.description import TrustedLibraryRegistry
from repro.workloads import generate_rules, packet_trace


def main() -> None:
    rules = generate_rules(1000, seed=42)
    trace = packet_trace(
        count=60, payload_size=512, duplicate_fraction=0.6,
        malicious_fraction=0.3, seed=42,
    )

    deployment = Deployment(seed=b"virus-scanner")
    case = pattern_case_study(rules)

    scanners = []
    for name in ("scanner-tenant-a", "scanner-tenant-b"):
        libs = TrustedLibraryRegistry()
        libs.register(case.library)
        app = deployment.create_application(name, libs)
        scanners.append((app, case.deduplicable(app)))

    alerts = 0
    for index, payload in enumerate(trace):
        app, scan = scanners[index % 2]  # packets load-balanced across tenants
        matches = scan(payload)
        alerts += len(matches)
        app.runtime.flush_puts()

    print(f"packets scanned      : {len(trace)}")
    print(f"rules loaded         : {len(rules)}")
    print(f"alerts raised        : {alerts}")
    for app, _ in scanners:
        stats = app.runtime.stats
        print(
            f"{app.name:18s}: {stats.calls} calls, {stats.hits} hits "
            f"({stats.hit_rate():.0%}), {stats.verification_failures} verify failures"
        )
    store = deployment.store.stats
    print(f"result store         : {store.gets} GETs ({store.hit_rate():.0%} hit), "
          f"{store.puts} PUTs ({store.puts_duplicate} duplicate)")

    misses = [r.sim_seconds for app, _ in scanners for r in app.runtime.stats.records if not r.hit]
    hits = [r.sim_seconds for app, _ in scanners for r in app.runtime.stats.records if r.hit]
    if hits and misses:
        speedup = (sum(misses) / len(misses)) / (sum(hits) / len(hits))
        print(f"mean speedup on hits : {speedup:.0f}x (simulated)")


if __name__ == "__main__":
    main()
