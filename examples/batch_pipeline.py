#!/usr/bin/env python
"""Batched execution: amortize enclave transitions across a request batch.

A thumbnail service receives bursts of requests.  Handling them one
``execute`` at a time pays the full fixed cost per request — an ECALL
into the application enclave, a GET round-trip to the ResultStore (two
more transitions plus a channel record), and the PUT on a miss.
``execute_many`` processes the whole burst under ONE enclave entry, ships
all duplicate checks as ONE batched message, and queues all PUTs
together; the in-enclave L1 cache additionally serves repeats without
any network traffic at all.

Run:  python examples/batch_pipeline.py
"""

from repro import (
    Deployment,
    FunctionDescription,
    RuntimeConfig,
    TrustedLibrary,
    TrustedLibraryRegistry,
)


def checksum_image(data: bytes) -> bytes:
    """Stand-in for a thumbnailing routine: deterministic and CPU-bound."""
    digest = 0
    for _ in range(40):
        for b in data:
            digest = (digest * 131 + b) % (1 << 64)
    return digest.to_bytes(8, "big") + data[:16]


DESC = FunctionDescription("imagekit", "3.0", "bytes checksum_image(bytes)")


def make_app(deployment: Deployment, name: str, **config_kwargs):
    libs = TrustedLibraryRegistry()
    libs.register(
        TrustedLibrary("imagekit", "3.0").add("bytes checksum_image(bytes)", checksum_image)
    )
    return deployment.create_application(
        name, libs, RuntimeConfig(app_id=name, **config_kwargs)
    )


def main() -> None:
    # A burst of 12 requests over 6 distinct images (repeats are common:
    # popular images get requested again and again).
    images = [bytes([i]) * 512 for i in range(6)]
    burst = [images[i % 6] for i in range(12)]

    # --- one call at a time ---------------------------------------------
    d_seq = Deployment(seed=b"batch-example")
    app_seq = make_app(d_seq, "one-at-a-time")
    sim0 = d_seq.clock.snapshot()
    results_seq = []
    for image in burst:
        results_seq.append(app_seq.runtime.execute(DESC, image))
        app_seq.runtime.flush_puts()
    seq_sim = d_seq.clock.since(sim0) / d_seq.clock.params.cpu_freq_hz
    seq_transitions = app_seq.enclave.transition_count

    # --- the same burst, batched (with a small L1 cache) ----------------
    d_bat = Deployment(seed=b"batch-example")
    app_bat = make_app(d_bat, "batched", l1_cache_entries=32)
    sim0 = d_bat.clock.snapshot()
    results_bat = app_bat.runtime.execute_many(DESC, burst)
    app_bat.runtime.flush_puts()
    bat_sim = d_bat.clock.since(sim0) / d_bat.clock.params.cpu_freq_hz
    bat_transitions = app_bat.enclave.transition_count

    assert results_bat == results_seq  # bit-identical per-item results

    stats = app_bat.runtime.stats
    print(f"burst size               : {len(burst)} requests, {len(images)} distinct")
    print(f"sequential               : {seq_transitions} app-enclave transitions, "
          f"{seq_sim * 1e3:.3f} ms simulated")
    print(f"batched                  : {bat_transitions} app-enclave transitions, "
          f"{bat_sim * 1e3:.3f} ms simulated")
    print(f"transition reduction     : {seq_transitions / bat_transitions:.1f}x")
    print(f"batched hit breakdown    : {stats.l1_hits} L1 hits, "
          f"{stats.misses} computed, {stats.puts_sent} PUTs flushed")
    print(f"PUT accounting           : {stats.puts_accepted} accepted, "
          f"{stats.puts_rejected} rejected, {stats.puts_failed} failed, "
          f"{app_bat.runtime.puts_unacknowledged} unacknowledged")


if __name__ == "__main__":
    main()
