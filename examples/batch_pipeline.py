#!/usr/bin/env python
"""Batched execution: amortize enclave transitions across a request batch.

A thumbnail service receives bursts of requests.  Handling them one
call at a time pays the full fixed cost per request — an ECALL into the
application enclave, a GET round-trip to the ResultStore (two more
transitions plus a channel record), and the PUT on a miss.
``wrapper.map`` processes the whole burst under ONE enclave entry, ships
all duplicate checks as ONE batched message, and queues all PUTs
together; the in-enclave L1 cache additionally serves repeats without
any network traffic at all.  ``map_results`` exposes the per-item
:class:`~repro.DedupResult`, so the example can say exactly where each
item came from.

Run:  python examples/batch_pipeline.py
"""

import repro
from repro import RuntimeConfig


def checksum_image(data: bytes) -> bytes:
    """Stand-in for a thumbnailing routine: deterministic and CPU-bound."""
    digest = 0
    for _ in range(40):
        for b in data:
            digest = (digest * 131 + b) % (1 << 64)
    return digest.to_bytes(8, "big") + data[:16]


def main() -> None:
    # A burst of 12 requests over 6 distinct images (repeats are common:
    # popular images get requested again and again).
    images = [bytes([i]) * 512 for i in range(6)]
    burst = [images[i % 6] for i in range(12)]

    # --- one call at a time ---------------------------------------------
    s_seq = repro.connect(
        app_name="one-at-a-time", seed=b"batch-example",
        runtime_config=RuntimeConfig(app_id="one-at-a-time"),
    )
    checksum_seq = s_seq.mark(version="3.0")(checksum_image)
    sim0 = s_seq.clock.snapshot()
    results_seq = []
    for image in burst:
        results_seq.append(checksum_seq(image))
        s_seq.flush_puts()
    seq_sim = s_seq.clock.since(sim0) / s_seq.clock.params.cpu_freq_hz
    seq_transitions = s_seq.enclave.transition_count

    # --- the same burst, batched (with a small L1 cache) ----------------
    s_bat = repro.connect(
        app_name="batched", seed=b"batch-example",
        runtime_config=RuntimeConfig(app_id="batched", l1_cache_entries=32),
    )
    checksum_bat = s_bat.mark(version="3.0")(checksum_image)
    sim0 = s_bat.clock.snapshot()
    per_item = checksum_bat.map_results(burst)
    s_bat.flush_puts()
    bat_sim = s_bat.clock.since(sim0) / s_bat.clock.params.cpu_freq_hz
    bat_transitions = s_bat.enclave.transition_count

    results_bat = [r.value for r in per_item]
    assert results_bat == results_seq  # bit-identical per-item results

    stats = s_bat.stats
    sources = {src: sum(1 for r in per_item if r.source == src)
               for src in ("l1", "store", "computed")}
    print(f"burst size               : {len(burst)} requests, {len(images)} distinct")
    print(f"sequential               : {seq_transitions} app-enclave transitions, "
          f"{seq_sim * 1e3:.3f} ms simulated")
    print(f"batched                  : {bat_transitions} app-enclave transitions, "
          f"{bat_sim * 1e3:.3f} ms simulated")
    print(f"transition reduction     : {seq_transitions / bat_transitions:.1f}x")
    print(f"per-item sources         : {sources['computed']} computed, "
          f"{sources['l1']} L1 hits, {sources['store']} store hits")
    print(f"batched hit breakdown    : {stats.l1_hits} L1 hits, "
          f"{stats.misses} computed, {stats.puts_sent} PUTs flushed")
    print(f"PUT accounting           : {stats.puts_accepted} accepted, "
          f"{stats.puts_rejected} rejected, {stats.puts_failed} failed, "
          f"{s_bat.runtime.puts_unacknowledged} unacknowledged")


if __name__ == "__main__":
    main()
