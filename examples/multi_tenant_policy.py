#!/usr/bin/env python
"""Operating SPEED with policies: authorization, quotas, adaptivity.

A shared-machine deployment where the operator enables the three policy
layers this reproduction implements on top of the paper's base design:

1. **Controlled deduplication** (§III-D discussion) — only enclaves from
   the trusted vendor may connect; a rogue enclave is refused at
   attestation time.
2. **DoS quotas** (§III-D) — each tenant gets a bounded slice of the
   store, so a flood from one cannot evict the others' results.
3. **Adaptive strategy** (§VII future work) — tenants running workloads
   where deduplication does not pay automatically stop querying.

Run:  python examples/multi_tenant_policy.py
"""

import repro
from repro import (
    FunctionDescription,
    QuotaPolicy,
    RuntimeConfig,
    StoreConfig,
    TrustedLibrary,
    TrustedLibraryRegistry,
)
from repro.apps.compress import deflate
from repro.core.adaptive import AdaptiveDedupPolicy
from repro.sgx.measurement import measure_code
from repro.store.authorization import AuthorizationError, AuthorizationPolicy
from repro.workloads import synthetic_text


def make_libs():
    libs = TrustedLibraryRegistry()
    libs.register(TrustedLibrary("zlib", "1.2.11").add("bytes deflate(bytes)", deflate))
    return libs


DESC = FunctionDescription("zlib", "1.2.11", "bytes deflate(bytes)")


def main() -> None:
    vendor_signer = measure_code(b"any", signer=b"speed-dev").mrsigner

    # Tenant A: repetitive workload — deduplication pays, stays on.
    tenant_a = repro.connect(
        app_name="tenant-a", seed=b"multi-tenant",
        libraries=make_libs(),
        store_config=StoreConfig(
            authorization=AuthorizationPolicy().allow_signer(vendor_signer),
            quota=QuotaPolicy(max_entries_per_app=8),
            capacity_entries=16,
        ),
        runtime_config=RuntimeConfig(
            app_id="tenant-a",
            adaptive=AdaptiveDedupPolicy(min_observations=4),
        ),
    )
    dedup_a = tenant_a.deduplicable(DESC)
    docs = [synthetic_text(8 * 1024, seed=i % 2) for i in range(10)]
    for doc in docs:
        dedup_a(doc)
        tenant_a.flush_puts()

    # Tenant B: all-unique short inputs — adaptivity suppresses lookups.
    tenant_b = tenant_a.sibling(
        "tenant-b", libraries=make_libs(),
        runtime_config=RuntimeConfig(
            app_id="tenant-b",
            adaptive=AdaptiveDedupPolicy(min_observations=4, probe_interval=50),
        ),
    )
    dedup_b = tenant_b.deduplicable(DESC)
    for i in range(20):
        dedup_b(synthetic_text(256, seed=100 + i))
        tenant_b.flush_puts()

    # A rogue enclave from an unknown vendor is turned away.
    try:
        tenant_a.store.connect(
            "rogue-addr",
            app_enclave=tenant_a.platform.create_enclave(
                "rogue", b"rogue-code", signer=b"unknown-vendor"
            ),
        )
        refused = False
    except AuthorizationError:
        refused = True

    stats_a, stats_b = tenant_a.stats, tenant_b.stats
    print(f"tenant-a (repetitive): {stats_a.calls} calls, {stats_a.hits} hits "
          f"({stats_a.hit_rate():.0%})")
    fid = tenant_b.runtime.libraries.function_identity(DESC)
    profile = tenant_b.runtime.config.adaptive.profile(fid)
    print(f"tenant-b (unique)    : {stats_b.calls} calls, {stats_b.hits} hits, "
          f"dedup {'suppressed' if not profile.dedup_enabled else 'active'} "
          f"after learning")
    print(f"store                : {len(tenant_a.store)} entries, "
          f"{tenant_a.store.stats.gets} GETs served")
    print(f"rogue enclave        : {'refused at attestation' if refused else 'ADMITTED (bug!)'}")


if __name__ == "__main__":
    main()
