#!/usr/bin/env python
"""Cluster demo: two applications share dedup results through a
4-shard, replication-factor-2 ResultStore cluster — and keep working
when one shard is killed mid-run.

App A computes word histograms over a document set and the PUTs spread
across the shard ring.  One shard is then crashed (its traffic vanishes
at the transport, like a dead store process).  App B runs the *same*
documents and still gets cross-application hits for every one of them:
tags owned by the dead shard fail over to their replicas.  After the
shard revives, read-repair flows the entries it missed back in.  Both
applications share one session tracer, so the failovers show up in the
unified metrics snapshot and the per-phase latency breakdown.

Run:  python examples/cluster_demo.py
"""

import repro
from repro.core.serialization import IntParser, MappingParser


def word_histogram(text: str) -> dict:
    counts: dict = {}
    for word in text.lower().split():
        counts[word] = counts.get(word, 0) + 1
    for _ in range(50):  # simulate heavier work
        sorted(counts.items())
    return counts


def main() -> None:
    session_a = repro.connect(
        shards=4, replication_factor=2, app_name="app-a", seed=b"cluster-demo"
    )
    parser = MappingParser(IntParser())
    histo_a = session_a.mark(version="2.1", result_parser=parser)(word_histogram)
    # App B: its own enclave and runtime, same cluster, same tracer.
    session_b = session_a.sibling("app-b")
    histo_b = session_b.deduplicable(histo_a.description, result_parser=parser)

    documents = [
        f"document {i}: " + " ".join(f"w{(i * 7 + j) % 23}" for j in range(120))
        for i in range(24)
    ]

    # --- App A computes everything; PUTs replicate across the ring -------
    results_a = [histo_a(doc) for doc in documents]
    session_a.flush_puts()
    snap = session_a.cluster.snapshot()
    print("shard entry counts after app A:",
          {s: v["entries"] for s, v in sorted(snap["shards"].items())})

    # --- one shard dies mid-run ------------------------------------------
    victim = "shard-2"
    session_a.kill_shard(victim)
    print(f"{victim} killed (alive={session_a.cluster.shard_alive(victim)})")

    # --- App B reruns the same documents against the degraded cluster ----
    results_b = [histo_b(doc) for doc in documents]
    assert results_b == results_a, "cross-app results must be bit-identical"
    stats_b = session_b.stats
    metrics_b = session_b.snapshot()
    print(f"app B: {stats_b.hits}/{stats_b.calls} cluster hits, "
          f"{stats_b.misses} recomputed, "
          f"{metrics_b['router.failovers']} failovers to replicas")
    assert stats_b.hits == len(documents), "replicas must serve the dead shard's tags"

    # --- fresh work lands only on the surviving shards -------------------
    fresh = [
        f"fresh {i}: " + " ".join(f"f{(i * 5 + j) % 17}" for j in range(80))
        for i in range(12)
    ]
    fresh_b = [histo_b(doc) for doc in fresh]
    session_b.flush_puts()

    # --- revive; read-repair refills whatever the shard missed -----------
    session_b.revive_shard(victim)
    results_b2 = [histo_b(doc) for doc in documents + fresh]
    assert results_b2 == results_a + fresh_b
    session_b.flush_puts()  # drains read-repair acks through the router
    print(f"{victim} revived; read repairs queued: "
          f"{session_b.snapshot()['router.read_repairs']} "
          f"(entries it missed while dead, refilled from replicas)")
    print("cluster total entries:", session_a.cluster.total_entries())
    print("demo OK: one shard down, zero results lost")
    print()
    print(session_b.phase_table(title="whole demo, per-phase latency totals"))


if __name__ == "__main__":
    main()
