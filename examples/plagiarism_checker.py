#!/usr/bin/env python
"""A Turnitin-style checker using *approximate* deduplication.

The paper's introduction names Turnitin's plagiarism checker as a
service that "encounters repeated input data (even from different
requesters)".  Submitted essays are rarely byte-identical — students
tweak a few words — so exact deduplication misses them.  This example
runs an expensive document-analysis function under the approximate
(SimHash-LSH) extension: near-duplicate submissions reuse the stored
analysis, fresh essays are computed.

Run:  python examples/plagiarism_checker.py
"""

import numpy as np

import repro
from repro import FunctionDescription, TrustedLibrary, TrustedLibraryRegistry
from repro.core.approximate import ApproximateDeduplicable
from repro.core.serialization import IntParser, MappingParser
from repro.workloads import synthetic_text


def analyze_document(data: bytes) -> dict:
    """An 'expensive' stylometric analysis (error-resilient)."""
    text = data.decode("ascii", errors="replace").lower()
    words = text.split()
    return {
        "words": len(words),
        "unique": len(set(words)),
        "sentences": text.count(". ") + 1,
        "avg_word_len": int(sum(len(w) for w in words) / max(1, len(words)) * 100),
    }


def tweak(essay: bytes, n_edits: int, seed: int) -> bytes:
    """A 'plagiarised' copy: the same essay with a few word swaps."""
    rng = np.random.default_rng(seed)
    out = bytearray(essay)
    for _ in range(n_edits):
        pos = int(rng.integers(0, len(out) - 8))
        out[pos:pos + 3] = b"the"
    return bytes(out)


def main() -> None:
    libs = TrustedLibraryRegistry()
    libs.register(
        TrustedLibrary("stylometry", "1.0").add("dict analyze(bytes)", analyze_document)
    )
    session = repro.connect(app_name="checker", libraries=libs, seed=b"plagiarism")

    approx_analyze = ApproximateDeduplicable(
        session.runtime,
        FunctionDescription("stylometry", "1.0", "dict analyze(bytes)"),
        result_parser=MappingParser(IntParser()),
        bands=4,
    )

    originals = [synthetic_text(6 * 1024, seed=i) for i in range(4)]
    submissions = []
    for i, essay in enumerate(originals):
        submissions.append(("original", essay))
        submissions.append(("tweaked copy", tweak(essay, n_edits=5, seed=50 + i)))

    for label, essay in submissions:
        report = approx_analyze(essay)
        stats = approx_analyze.stats
        verdict = "REUSED (near-duplicate!)" if label == "tweaked copy" and \
            stats.exact_band_hits else "analyzed fresh"
        print(f"{label:13s}: {report['words']:4d} words, "
              f"{report['unique']:3d} unique -> {verdict}")

    stats = approx_analyze.stats
    print(f"\nsubmissions          : {stats.calls}")
    print(f"near-duplicate reuse : {stats.exact_band_hits}")
    print(f"fresh analyses       : {stats.misses}")
    print("note: exact SPEED would have missed every tweaked copy; the")
    print("      approximate extension trades a coarser key lock for")
    print("      similarity reuse (see repro/core/approximate.py).")


if __name__ == "__main__":
    main()
