#!/usr/bin/env python
"""Quickstart: make a function deduplicable in 2 lines of code.

Mirrors the paper's §IV-C developer story through the unified entry
point: ``repro.connect()`` wires a full simulated SGX machine — the
application enclave plus an encrypted ResultStore — and
``@session.mark`` makes any deterministic function deduplicable.  Every
call is traced end to end, so the session can print the connected span
tree of the request it just served.

Run:  python examples/quickstart.py
"""

import repro
from repro.core.serialization import IntParser, MappingParser


def main() -> None:
    session = repro.connect(app_name="quickstart-app", seed=b"quickstart")

    # --- the 2 lines the paper advertises --------------------------------
    @session.mark(version="2.1", result_parser=MappingParser(IntParser()))
    def word_histogram(text: str) -> dict:
        """A deterministic, moderately expensive computation."""
        counts: dict = {}
        for word in text.lower().split():
            counts[word] = counts.get(word, 0) + 1
        # Simulate heavier work (e.g. stemming, n-grams).
        for _ in range(200):
            sorted(counts.items())
        return counts

    document = "the quick brown fox jumps over the lazy dog " * 50

    result_first = word_histogram(document)            # initial (miss)
    session.flush_puts()
    result_second = word_histogram.call_result(document)  # subsequent (hit)

    assert result_second.value == result_first
    stats = session.stats
    first, second = stats.records
    print(f"distinct words           : {len(result_first)}")
    print(f"initial computation      : {first.sim_seconds * 1e3:.3f} ms (simulated), miss")
    print(f"subsequent computation   : {second.sim_seconds * 1e3:.3f} ms (simulated), "
          f"{'hit' if result_second.hit else 'miss'} "
          f"(served from the {result_second.source})")
    print(f"hit rate                 : {stats.hit_rate():.0%}")
    print(f"store                    : {session.store.stats}")
    print()
    print(session.trace_table(title="the subsequent call, span by span"))


if __name__ == "__main__":
    main()
