#!/usr/bin/env python
"""Quickstart: make a function deduplicable in 2 lines of code.

Mirrors the paper's §IV-C developer story: you have an SGX-enabled
application with a trusted-library function; to deduplicate it you (1)
create a ``Deduplicable`` version by providing a simple description and
(2) use it as normal.

Run:  python examples/quickstart.py
"""

from repro import (
    Deployment,
    FunctionDescription,
    TrustedLibrary,
    TrustedLibraryRegistry,
)


def word_histogram(text: str) -> dict:
    """A deterministic, moderately expensive computation."""
    counts: dict = {}
    for word in text.lower().split():
        counts[word] = counts.get(word, 0) + 1
    # Simulate heavier work (e.g. stemming, n-grams).
    for _ in range(200):
        sorted(counts.items())
    return counts


def main() -> None:
    # --- one-time application setup (the "SGX port" of your app) ---------
    libs = TrustedLibraryRegistry()
    libs.register(
        TrustedLibrary("textkit", "2.1.0").add("dict word_histogram(str)", word_histogram)
    )
    deployment = Deployment(seed=b"quickstart")
    app = deployment.create_application("quickstart-app", libs)

    # --- the 2 lines the paper advertises --------------------------------
    from repro.core.serialization import IntParser, MappingParser

    dedup_histogram = app.deduplicable(                       # line 1
        FunctionDescription("textkit", "2.1.0", "dict word_histogram(str)"),
        result_parser=MappingParser(IntParser()),
    )

    document = "the quick brown fox jumps over the lazy dog " * 50

    result_first = dedup_histogram(document)                  # line 2 (initial)
    app.runtime.flush_puts()
    result_second = dedup_histogram(document)                 # line 2 (subsequent)

    assert result_first == result_second
    stats = app.runtime.stats
    first, second = stats.records
    print(f"distinct words           : {len(result_first)}")
    print(f"initial computation      : {first.sim_seconds * 1e3:.3f} ms (simulated), miss")
    print(f"subsequent computation   : {second.sim_seconds * 1e3:.3f} ms (simulated), "
          f"{'hit' if second.hit else 'miss'}")
    print(f"hit rate                 : {stats.hit_rate():.0%}")
    print(f"store                    : {deployment.store.stats}")


if __name__ == "__main__":
    main()
