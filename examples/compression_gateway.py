#!/usr/bin/env python
"""A bandwidth-optimizing compression gateway (paper Case 2).

A network middlebox compresses documents before they leave the data
center.  Incrementally re-synchronised datasets mean the same documents
keep coming back; SPEED turns repeat compressions into store lookups.
This example also shows the *failure* path: after an adversary tampers
with the stored ciphertext, the application detects it (AEAD), falls
back to fresh computation, and still returns the correct bytes — and the
session trace shows the tampered blob read followed by the recompute.

Run:  python examples/compression_gateway.py
"""

import repro
from repro import TrustedLibraryRegistry
from repro.apps.compress import inflate
from repro.apps.registry import compress_case_study
from repro.core.tag import derive_tag
from repro.workloads import text_corpus


def main() -> None:
    corpus = text_corpus(count=12, n_bytes=8 * 1024, duplicate_fraction=0.5, seed=9)

    case = compress_case_study()
    libs = TrustedLibraryRegistry()
    case.register_into(libs)
    session = repro.connect(
        app_name="gateway", libraries=libs, seed=b"compression-gateway"
    )
    dedup_deflate = case.deduplicable(session.app)

    saved_bytes = 0
    for document in corpus:
        compressed = dedup_deflate(document)
        assert inflate(compressed) == document
        saved_bytes += len(document) - len(compressed)
        session.flush_puts()

    stats = session.stats
    print(f"documents compressed : {stats.calls}")
    print(f"cache hits           : {stats.hits} ({stats.hit_rate():.0%})")
    print(f"bandwidth saved      : {saved_bytes / 1024:.1f} KiB")

    # --- adversarial episode: the host tampers with a stored result ------
    victim = corpus[0]
    func_identity = session.runtime.libraries.function_identity(case.description)
    tag = derive_tag(func_identity, victim)
    session.store.blobstore.tamper(session.store.blob_ref_of(tag))

    before_failures = stats.verification_failures
    recovered = dedup_deflate(victim)  # store copy is poisoned
    assert inflate(recovered) == victim
    detected = (stats.verification_failures - before_failures > 0
                or session.store.stats.tamper_detected > 0)
    print("tamper episode       : store copy corrupted by host adversary")
    print(f"  detected            : {detected}")
    print("  correct result      : recomputed transparently, output verified")
    print()
    print(session.trace_table(title="the tampered call: detect, recompute"))


if __name__ == "__main__":
    main()
