#!/usr/bin/env python
"""An image feature-extraction service accelerated by SPEED (paper Case 1).

An object-recognition backend extracts SIFT descriptors from uploaded
images.  Users re-upload the same images constantly (thumbnails, memes,
mirrors), so the service deduplicates the ``sift()`` call.  A second
stage matches descriptor sets to find near-identical image pairs —
demonstrating that the decrypted, reused descriptors are byte-identical
to freshly computed ones.

Run:  python examples/image_service.py
"""

import numpy as np

import repro
from repro import TrustedLibraryRegistry
from repro.apps.registry import sift_case_study
from repro.apps.sift import match_descriptors
from repro.workloads import image_stream


def main() -> None:
    stream = image_stream(count=10, size=96, duplicate_fraction=0.5, seed=3)

    case = sift_case_study()
    libs = TrustedLibraryRegistry()
    case.register_into(libs)
    session = repro.connect(
        app_name="image-service", libraries=libs, seed=b"image-service"
    )
    dedup_sift = case.deduplicable(session.app)

    features = []
    for image in stream:
        features.append(dedup_sift(image))
        session.flush_puts()

    stats = session.stats
    print(f"images processed   : {stats.calls}")
    print(f"cache hits         : {stats.hits} ({stats.hit_rate():.0%})")
    total_kp = sum(len(f) for f in features)
    print(f"keypoints extracted: {total_kp}")

    # Verify reused descriptors are bit-identical to recomputation.
    for image, feats in zip(stream, features):
        direct = case.func(image)
        assert np.array_equal(direct, feats), "reused result diverged from recompute"
    print("descriptor fidelity: reused results identical to fresh computation")

    # Find duplicate image pairs via descriptor matching.
    duplicate_pairs = 0
    for i in range(len(features)):
        for j in range(i + 1, len(features)):
            if len(features[i]) and len(features[j]):
                matches = match_descriptors(features[i], features[j])
                if len(matches) >= 0.8 * min(len(features[i]), len(features[j])):
                    duplicate_pairs += 1
    print(f"near-duplicate pairs: {duplicate_pairs}")

    hit_ms = [r.sim_seconds * 1e3 for r in stats.records if r.hit]
    miss_ms = [r.sim_seconds * 1e3 for r in stats.records if not r.hit]
    if hit_ms and miss_ms:
        print(f"mean miss latency  : {sum(miss_ms) / len(miss_ms):.2f} ms (simulated)")
        print(f"mean hit latency   : {sum(hit_ms) / len(hit_ms):.2f} ms (simulated)")


if __name__ == "__main__":
    main()
