#!/usr/bin/env python
"""Master-ResultStore replication across machines (paper §IV-B remark).

Machine A runs a BoW pipeline over a crawl and fills its local
ResultStore.  A dedicated master store on machine B pulls the popular
results over a remote-attested channel.  A fresh application on machine
B then gets cache hits for computations it never ran — decryptable only
because it owns the same function code and inputs.  Each machine is its
own :func:`repro.connect` session; they share one attestation service.

Run:  python examples/cross_machine_sync.py
"""

import repro
from repro import TrustedLibraryRegistry
from repro.apps.registry import bow_case_study
from repro.sgx.attestation import AttestationService
from repro.store.sync import replicate_popular
from repro.workloads import webpage_stream


def main() -> None:
    attestation = AttestationService()  # one deployment-wide IAS
    case = bow_case_study()

    def libs() -> TrustedLibraryRegistry:
        registry = TrustedLibraryRegistry()
        case.register_into(registry)
        return registry

    machine_a = repro.connect(
        app_name="crawler-a", machine="machine-a", seed=b"machine-a",
        libraries=libs(), attestation_service=attestation,
    )
    machine_b = repro.connect(
        app_name="indexer-b", machine="machine-b", seed=b"machine-b",
        libraries=libs(), attestation_service=attestation,
    )

    pages = webpage_stream(count=8, n_words=600, duplicate_fraction=0.25, seed=21)

    # Machine A: crawl processing fills the local store.
    bow_a = case.deduplicable(machine_a.app)
    for page in pages:
        bow_a(page)
        machine_a.flush_puts()
    print(f"machine A: {machine_a.stats.calls} pages, "
          f"{len(machine_a.store)} results stored")

    # Replicate popular entries to the master store on machine B.
    report = replicate_popular(attestation, machine_a.store, machine_b.store,
                               min_hits=1)
    print(f"sync     : offered={report.offered} transferred={report.transferred} "
          f"duplicates={report.duplicates}")
    # A second round is a no-op: deterministic tags mean no redundancy.
    second = replicate_popular(attestation, machine_a.store, machine_b.store,
                               min_hits=1)
    print(f"resync   : transferred={second.transferred} (idempotent)")

    # Machine B: a different application, same trusted library.
    bow_b = case.deduplicable(machine_b.app)
    for page in pages:
        bow_b(page)
    stats = machine_b.stats
    print(f"machine B: {stats.calls} pages, {stats.hits} served from replicated "
          f"results ({stats.hit_rate():.0%} hit rate) — computed nothing it "
          f"could reuse")


if __name__ == "__main__":
    main()
