#!/usr/bin/env python
"""Master-ResultStore replication across machines (paper §IV-B remark).

Machine A runs a BoW pipeline over a crawl and fills its local
ResultStore.  A dedicated master store on machine B pulls the popular
results over a remote-attested channel.  A fresh application on machine
B then gets cache hits for computations it never ran — decryptable only
because it owns the same function code and inputs.

Run:  python examples/cross_machine_sync.py
"""

from repro import Deployment
from repro.apps.registry import bow_case_study
from repro.core.description import TrustedLibraryRegistry
from repro.sgx.attestation import AttestationService
from repro.store.sync import replicate_popular
from repro.workloads import webpage_stream


def main() -> None:
    attestation = AttestationService()  # one deployment-wide IAS
    machine_a = Deployment(seed=b"machine-a", machine="machine-a",
                           attestation_service=attestation)
    machine_b = Deployment(seed=b"machine-b", machine="machine-b",
                           attestation_service=attestation)

    pages = webpage_stream(count=8, n_words=600, duplicate_fraction=0.25, seed=21)

    # Machine A: crawl processing fills the local store.
    case = bow_case_study()
    libs_a = TrustedLibraryRegistry()
    case.register_into(libs_a)
    app_a = machine_a.create_application("crawler-a", libs_a)
    bow_a = case.deduplicable(app_a)
    for page in pages:
        bow_a(page)
        app_a.runtime.flush_puts()
    print(f"machine A: {app_a.runtime.stats.calls} pages, "
          f"{len(machine_a.store)} results stored")

    # Replicate popular entries to the master store on machine B.
    report = replicate_popular(attestation, machine_a.store, machine_b.store, min_hits=1)
    print(f"sync     : offered={report.offered} transferred={report.transferred} "
          f"duplicates={report.duplicates}")
    # A second round is a no-op: deterministic tags mean no redundancy.
    second = replicate_popular(attestation, machine_a.store, machine_b.store, min_hits=1)
    print(f"resync   : transferred={second.transferred} (idempotent)")

    # Machine B: a different application, same trusted library.
    libs_b = TrustedLibraryRegistry()
    case.register_into(libs_b)
    app_b = machine_b.create_application("indexer-b", libs_b)
    bow_b = case.deduplicable(app_b)
    for page in pages:
        bow_b(page)
    stats = app_b.runtime.stats
    print(f"machine B: {stats.calls} pages, {stats.hits} served from replicated "
          f"results ({stats.hit_rate():.0%} hit rate) — computed nothing it "
          f"could reuse")


if __name__ == "__main__":
    main()
