"""Ablation A2 — synchronous vs asynchronous PUT on the init path."""

import pytest

from repro import RuntimeConfig
from repro.apps.registry import compress_case_study
from repro.workloads import synthetic_text

from _helpers import deployment_with_case

TEXT = synthetic_text(8 * 1024, seed=3)


@pytest.mark.parametrize("async_put", [False, True], ids=["sync-put", "async-put"])
def test_initial_call_latency(benchmark, async_put):
    case = compress_case_study()
    _, app = deployment_with_case(
        case,
        runtime_config=RuntimeConfig(app_id="a2", async_put=async_put),
        seed=b"a2-%d" % async_put,
    )
    dedup = case.deduplicable(app)
    counter = iter(range(10**9))

    def initial_call():
        dedup(TEXT + str(next(counter)).encode())

    benchmark(initial_call)
    app.runtime.flush_puts()
