"""Ablation A4 — PUT admission cost with and without the DoS quota."""

import itertools

import pytest

from repro import Deployment
from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashes import sha256
from repro.net.messages import PutRequest
from repro.store.quota import QuotaPolicy
from repro.store.resultstore import StoreConfig


def build(quota: QuotaPolicy | None, label: bytes):
    d = Deployment(seed=b"a4-bench" + label,
                   store_config=StoreConfig(quota=quota))
    enclave = d.platform.create_enclave("a4-client", b"a4-client-code")
    client = d.store.connect("a4-client-addr", app_enclave=enclave)
    drbg = HmacDrbg(b"a4" + label)
    return client, drbg


def put_stream(drbg, label: bytes):
    for i in itertools.count():
        yield PutRequest(
            tag=sha256(label + i.to_bytes(8, "big")),
            challenge=drbg.generate(32),
            wrapped_key=drbg.generate(16),
            sealed_result=drbg.generate(256),
            app_id="bench",
        )


@pytest.mark.parametrize(
    "quota", [None, QuotaPolicy(max_bytes_per_app=1 << 30)],
    ids=["no-quota", "with-quota"],
)
def test_put_admission(benchmark, quota):
    label = b"q" if quota else b"n"
    client, drbg = build(quota, label)
    puts = put_stream(drbg, label)

    def one_put():
        assert client.call(next(puts)).accepted

    benchmark(one_put)
