"""Fig. 5(d) — BoW computation over the MapReduce framework."""

from repro.apps.registry import bow_case_study
from repro.baselines.presets import no_dedup_runtime_config
from repro.workloads import synthetic_webpage

from _helpers import deployment_with_case

PAGE = synthetic_webpage(1000, seed=7)


def test_baseline_without_speed(benchmark):
    case = bow_case_study()
    _, app = deployment_with_case(
        case, runtime_config=no_dedup_runtime_config("bench"), seed=b"5d-base"
    )
    dedup = case.deduplicable(app)
    benchmark(dedup, PAGE)


def test_initial_computation(benchmark):
    case = bow_case_study()
    _, app = deployment_with_case(case, seed=b"5d-init")
    dedup = case.deduplicable(app)
    counter = iter(range(10**9))

    def initial_call():
        dedup(PAGE + f"\n<p>round {next(counter)}</p>")

    benchmark(initial_call)
    assert app.runtime.stats.hits == 0


def test_subsequent_computation(benchmark):
    case = bow_case_study()
    _, app = deployment_with_case(case, seed=b"5d-subsq")
    dedup = case.deduplicable(app)
    expected = dedup(PAGE)
    app.runtime.flush_puts()
    result = benchmark(dedup, PAGE)
    assert result == expected
