"""Table I — cryptographic operations in DedupRuntime.

Benchmarks the five columns (Tag Gen., Key Gen., Key Rec., Result Enc.,
Result Dec.) at two representative input sizes.  The full 1 KB-1 MB
sweep with simulated times calibrated to the paper's platform is printed
by ``python -m repro.bench table1``.
"""

import pytest

from repro.core.scheme import CHALLENGE_SIZE, KEY_SIZE
from repro.core.tag import derive_locking_hash, derive_tag
from repro.crypto import gcm
from repro.crypto.drbg import HmacDrbg

SIZES = [10 * 1024, 100 * 1024]

_drbg = HmacDrbg(b"bench-table1")
FUNC_IDENTITY = _drbg.generate(32)
CHALLENGE = _drbg.generate(CHALLENGE_SIZE)
KEY = _drbg.generate(KEY_SIZE)
IV = _drbg.generate(12)


def _data(size: int) -> bytes:
    return (_drbg.generate(1024) * (size // 1024 + 1))[:size]


@pytest.mark.parametrize("size", SIZES)
def test_tag_gen(benchmark, size):
    data = _data(size)
    benchmark(derive_tag, FUNC_IDENTITY, data)


@pytest.mark.parametrize("size", SIZES)
def test_key_gen(benchmark, size):
    data = _data(size)

    def key_gen():
        locking = derive_locking_hash(FUNC_IDENTITY, data, CHALLENGE)
        return bytes(a ^ b for a, b in zip(KEY, locking[:KEY_SIZE]))

    benchmark(key_gen)


@pytest.mark.parametrize("size", SIZES)
def test_key_rec(benchmark, size):
    data = _data(size)
    locking = derive_locking_hash(FUNC_IDENTITY, data, CHALLENGE)
    wrapped = bytes(a ^ b for a, b in zip(KEY, locking[:KEY_SIZE]))

    def key_rec():
        locking2 = derive_locking_hash(FUNC_IDENTITY, data, CHALLENGE)
        return bytes(a ^ b for a, b in zip(wrapped, locking2[:KEY_SIZE]))

    recovered = benchmark(key_rec)
    assert recovered == KEY


@pytest.mark.parametrize("size", SIZES)
def test_result_enc(benchmark, size):
    data = _data(size)
    tag = derive_tag(FUNC_IDENTITY, data)
    benchmark(gcm.seal, KEY, IV, data, tag)


@pytest.mark.parametrize("size", SIZES)
def test_result_dec(benchmark, size):
    data = _data(size)
    tag = derive_tag(FUNC_IDENTITY, data)
    sealed = gcm.seal(KEY, IV, data, tag)
    plain = benchmark(gcm.open_, KEY, sealed, tag)
    assert plain == data
