"""Fig. 5(c) — packet scanning against a Snort-like ruleset."""

import pytest

from repro.apps.registry import pattern_case_study
from repro.baselines.presets import no_dedup_runtime_config
from repro.workloads import packet_trace

from _helpers import deployment_with_case

PACKET = packet_trace(1, payload_size=512, duplicate_fraction=0.0, seed=7)[0]


@pytest.fixture(scope="module")
def case(small_rules_module):
    return pattern_case_study(small_rules_module)


@pytest.fixture(scope="module")
def small_rules_module():
    from repro.workloads import generate_rules

    return generate_rules(300, seed=1)


def test_baseline_without_speed(benchmark, case):
    _, app = deployment_with_case(
        case, runtime_config=no_dedup_runtime_config("bench"), seed=b"5c-base"
    )
    dedup = case.deduplicable(app)
    benchmark(dedup, PACKET)


def test_initial_computation(benchmark, case):
    _, app = deployment_with_case(case, seed=b"5c-init")
    dedup = case.deduplicable(app)
    counter = iter(range(10**9))

    def initial_call():
        dedup(PACKET + str(next(counter)).encode())

    benchmark(initial_call)
    assert app.runtime.stats.hits == 0


def test_subsequent_computation(benchmark, case):
    _, app = deployment_with_case(case, seed=b"5c-subsq")
    dedup = case.deduplicable(app)
    expected = dedup(PACKET)
    app.runtime.flush_puts()
    result = benchmark(dedup, PACKET)
    assert result == expected
