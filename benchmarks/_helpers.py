"""Shared helpers for the pytest-benchmark suite (see conftest.py)."""

from __future__ import annotations

import itertools

from repro import Deployment
from repro.core.description import TrustedLibraryRegistry


def deployment_with_case(case, *, app_name="bench-app", runtime_config=None,
                         seed=b"bench"):
    """Fresh deployment + one application linking the case's library."""
    libs = TrustedLibraryRegistry()
    case.register_into(libs)
    deployment = Deployment(seed=seed + app_name.encode())
    app = deployment.create_application(app_name, libs, runtime_config)
    return deployment, app


def unique_inputs(make_input):
    """Endless stream of distinct inputs (for miss-path benchmarks)."""
    return (make_input(i) for i in itertools.count())
