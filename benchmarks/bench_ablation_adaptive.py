"""Ablation A5 — adaptive deduplication strategy (paper §VII).

Benchmarks the per-call cost of an unprofitable workload (cheap
function, all-unique inputs) with the adaptive policy on and off: the
policy learns to skip the store round trip, so the adaptive variant
should approach plain-compute cost.
"""

import itertools

import pytest

from repro import RuntimeConfig
from repro.core.adaptive import AdaptiveDedupPolicy
from repro.apps.registry import compress_case_study
from repro.workloads import synthetic_text

from _helpers import deployment_with_case


def unique_texts():
    for i in itertools.count():
        yield synthetic_text(256, seed=900 + i)


@pytest.mark.parametrize(
    "adaptive", [False, True], ids=["always-on", "adaptive"]
)
def test_unprofitable_workload(benchmark, adaptive):
    case = compress_case_study()
    policy = (
        AdaptiveDedupPolicy(min_observations=6, probe_interval=50)
        if adaptive else None
    )
    _, app = deployment_with_case(
        case,
        runtime_config=RuntimeConfig(app_id="a5", adaptive=policy),
        seed=b"a5-%d" % adaptive,
    )
    dedup = case.deduplicable(app)
    stream = unique_texts()
    # Warm the profile past min_observations so the decision is made.
    for _ in range(10):
        dedup(next(stream))
        app.runtime.flush_puts()

    def one_call():
        dedup(next(stream))

    benchmark(one_call)
    app.runtime.flush_puts()
