"""Fig. 5(a) — SIFT feature extraction: baseline vs init vs subsequent.

Wall-clock microbenchmarks of the three regimes the figure compares.
The paper-shaped relative-time table comes from
``python -m repro.bench fig5a``.
"""

import pytest

from repro.apps.registry import sift_case_study
from repro.baselines.presets import no_dedup_runtime_config
from repro.workloads import image_stream, synthetic_image

from _helpers import deployment_with_case

SIZE = 64
IMAGE = synthetic_image(SIZE, seed=7)


def test_baseline_without_speed(benchmark):
    """The red 100% line: plain sift() on every call."""
    case = sift_case_study()
    _, app = deployment_with_case(
        case, runtime_config=no_dedup_runtime_config("bench"), seed=b"5a-base"
    )
    dedup = case.deduplicable(app)
    benchmark(dedup, IMAGE)


def test_initial_computation(benchmark):
    """Init. Comp.: compute + protect + PUT, unique image per round."""
    case = sift_case_study()
    _, app = deployment_with_case(case, seed=b"5a-init")
    dedup = case.deduplicable(app)
    stream = iter(image_stream(4096, SIZE, duplicate_fraction=0.0, seed=11))

    def initial_call():
        dedup(next(stream))

    benchmark(initial_call)
    assert app.runtime.stats.hits == 0


def test_subsequent_computation(benchmark):
    """Subsq. Comp.: the secure cache hit."""
    case = sift_case_study()
    _, app = deployment_with_case(case, seed=b"5a-subsq")
    dedup = case.deduplicable(app)
    dedup(IMAGE)
    app.runtime.flush_puts()
    result = benchmark(dedup, IMAGE)
    assert len(result) > 0
    assert app.runtime.stats.hits >= 1
