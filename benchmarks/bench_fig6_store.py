"""Fig. 6 — ResultStore GET/PUT throughput, with and without SGX.

Each benchmark measures one request round trip at the given size; the
``use_sgx`` parameter toggles the store enclave exactly as the paper's
comparison does.  The totals-of-100-ops table lives in
``python -m repro.bench fig6``.
"""

import itertools

import pytest

from repro import Deployment
from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashes import sha256
from repro.net.messages import GetRequest, PutRequest
from repro.store.resultstore import StoreConfig

SIZES = [1 * 1024, 100 * 1024]


def make_client(use_sgx: bool, label: bytes):
    d = Deployment(seed=b"fig6-bench" + label,
                   store_config=StoreConfig(use_sgx=use_sgx))
    enclave = (
        d.platform.create_enclave("bench-client", b"bench-client-code")
        if use_sgx else None
    )
    client = d.store.connect("bench-client-addr", app_enclave=enclave)
    return d, client


def put_stream(size: int, label: bytes):
    drbg = HmacDrbg(b"fig6" + label)
    body_base = drbg.generate(4096)
    for i in itertools.count():
        tag = sha256(label + i.to_bytes(8, "big"))
        body = (body_base * (size // 4096 + 1))[:size - 8] + i.to_bytes(8, "big")
        yield PutRequest(tag=tag, challenge=drbg.generate(32),
                         wrapped_key=drbg.generate(16),
                         sealed_result=body, app_id="bench")


@pytest.mark.parametrize("use_sgx", [True, False], ids=["sgx", "no-sgx"])
@pytest.mark.parametrize("size", SIZES)
def test_put_request(benchmark, use_sgx, size):
    label = b"put%d%d" % (size, use_sgx)
    _, client = make_client(use_sgx, label)
    puts = put_stream(size, label)

    def one_put():
        response = client.call(next(puts))
        assert response.accepted

    benchmark(one_put)


@pytest.mark.parametrize("use_sgx", [True, False], ids=["sgx", "no-sgx"])
@pytest.mark.parametrize("size", SIZES)
def test_get_request(benchmark, use_sgx, size):
    label = b"get%d%d" % (size, use_sgx)
    _, client = make_client(use_sgx, label)
    put = next(put_stream(size, label))
    client.call(put)

    def one_get():
        response = client.call(GetRequest(tag=put.tag, app_id="bench"))
        assert response.found

    benchmark(one_get)
