"""Ablation A1 — result-protection schemes: cross-app vs single-key vs
plaintext (UNIC regime).

Benchmarks the pure protect/recover operations so the cost of the extra
locking hash in the cross-application design is directly visible.
"""

import pytest

from repro.core.scheme import CrossAppScheme, PlaintextScheme, SingleKeyScheme
from repro.core.tag import derive_tag
from repro.crypto.drbg import HmacDrbg

SIZE = 32 * 1024

_drbg = HmacDrbg(b"ablation-schemes")
FUNC = _drbg.generate(32)
INPUT = (_drbg.generate(1024) * (SIZE // 1024 + 1))[:SIZE]
RESULT = (_drbg.generate(1024) * (SIZE // 1024 + 1))[:SIZE]
TAG = derive_tag(FUNC, INPUT)

SCHEMES = {
    "cross-app": CrossAppScheme(),
    "single-key": SingleKeyScheme(b"system-wide-key!"),
    "plaintext-unic": PlaintextScheme(),
}


@pytest.mark.parametrize("name", list(SCHEMES))
def test_protect(benchmark, name):
    scheme = SCHEMES[name]
    rand = HmacDrbg(b"r" + name.encode()).generate
    benchmark(scheme.protect, FUNC, INPUT, TAG, RESULT, rand)


@pytest.mark.parametrize("name", list(SCHEMES))
def test_recover(benchmark, name):
    scheme = SCHEMES[name]
    rand = HmacDrbg(b"r" + name.encode()).generate
    protected = scheme.protect(FUNC, INPUT, TAG, RESULT, rand)
    out = benchmark(scheme.recover, FUNC, INPUT, TAG, protected)
    assert out == RESULT
