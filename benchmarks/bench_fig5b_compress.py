"""Fig. 5(b) — data compression: baseline vs init vs subsequent."""

from repro.apps.registry import compress_case_study
from repro.baselines.presets import no_dedup_runtime_config
from repro.workloads import synthetic_text

from _helpers import deployment_with_case

TEXT = synthetic_text(16 * 1024, seed=7)


def test_baseline_without_speed(benchmark):
    case = compress_case_study()
    _, app = deployment_with_case(
        case, runtime_config=no_dedup_runtime_config("bench"), seed=b"5b-base"
    )
    dedup = case.deduplicable(app)
    benchmark(dedup, TEXT)


def test_initial_computation(benchmark):
    case = compress_case_study()
    _, app = deployment_with_case(case, seed=b"5b-init")
    dedup = case.deduplicable(app)
    counter = iter(range(10**9))

    def initial_call():
        dedup(TEXT + str(next(counter)).encode())

    benchmark(initial_call)
    assert app.runtime.stats.hits == 0


def test_subsequent_computation(benchmark):
    case = compress_case_study()
    _, app = deployment_with_case(case, seed=b"5b-subsq")
    dedup = case.deduplicable(app)
    expected = dedup(TEXT)
    app.runtime.flush_puts()
    result = benchmark(dedup, TEXT)
    assert result == expected
