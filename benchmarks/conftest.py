"""Fixtures for the pytest-benchmark suite.

These benchmarks measure the *wall-clock* cost of the reproduction's hot
paths.  The paper-shaped tables and figures (simulated time, calibrated
to the paper's platform) are produced by the CLI harness instead:

    python -m repro.bench all

Each ``bench_*.py`` file maps to one artifact — see DESIGN.md section 4.
"""

import pytest


@pytest.fixture(scope="session")
def small_rules():
    from repro.workloads import generate_rules

    return generate_rules(300, seed=1)
