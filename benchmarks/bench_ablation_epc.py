"""Ablation A3 — metadata-outside (paper) vs results-inside-EPC store.

The wall-clock difference here reflects bookkeeping only; the *simulated*
page-fault cost that motivates the paper's design is reported by
``python -m repro.bench a3``.  The assertions pin the fault-count shape.
"""

import itertools

import pytest

from repro import Deployment
from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashes import sha256
from repro.net.messages import GetRequest, PutRequest
from repro.store.resultstore import StoreConfig

N_ENTRIES = 48
RESULT_BYTES = 64 * 1024
EPC_BYTES = 2 * 1024 * 1024


def build_store(blobs_in_epc: bool):
    d = Deployment(
        seed=b"a3-bench-%d" % blobs_in_epc,
        store_config=StoreConfig(use_sgx=True, blobs_in_epc=blobs_in_epc),
        epc_usable_bytes=EPC_BYTES,
    )
    enclave = d.platform.create_enclave("a3-client", b"a3-client-code")
    client = d.store.connect("a3-client-addr", app_enclave=enclave)
    drbg = HmacDrbg(b"a3-bench")
    block = drbg.generate(4096)
    tags = []
    for i in range(N_ENTRIES):
        tag = sha256(b"a3" + bytes([blobs_in_epc]) + i.to_bytes(4, "big"))
        tags.append(tag)
        body = (block * (RESULT_BYTES // 4096 + 1))[:RESULT_BYTES - 8] + i.to_bytes(8, "big")
        client.call(PutRequest(tag=tag, challenge=drbg.generate(32),
                               wrapped_key=drbg.generate(16),
                               sealed_result=body, app_id="a3"))
    return d, client, tags


@pytest.mark.parametrize("blobs_in_epc", [False, True],
                         ids=["metadata-only", "blobs-in-epc"])
def test_get_sweep(benchmark, blobs_in_epc):
    d, client, tags = build_store(blobs_in_epc)
    cycler = itertools.cycle(tags)

    def one_get():
        response = client.call(GetRequest(tag=next(cycler), app_id="a3"))
        assert response.found

    benchmark(one_get)
    if blobs_in_epc:
        # 48 x 64 KiB = 3 MiB of blobs > 2 MiB EPC: the sweep thrashes.
        assert d.platform.epc.fault_count > 0
    else:
        # Metadata slots alone fit comfortably.
        assert d.platform.epc.eviction_count == 0
